"""Batched, optionally parallel problem evaluation with result caching.

Every optimizer in this package funnels its simulator queries through an
:class:`EvalEngine`.  The engine owns two orthogonal concerns:

* **dispatch** — how a batch of designs is turned into performance rows.
  Five backends are provided: ``serial`` (in-process loop, the default),
  ``thread`` (a :class:`~concurrent.futures.ThreadPoolExecutor`; useful when
  the simulator releases the GIL or blocks on I/O), ``process`` (a process
  pool; true CPU parallelism for the pure-python SPICE engine), ``async``
  (an asyncio dispatcher with bounded concurrency and work-stealing
  chunking — see :mod:`repro.core.service`), and ``remote`` (a coordinator
  speaking a length-prefixed JSON socket protocol to worker server
  processes on one or many hosts).
* **memoization** — a content-hashed LRU cache keyed on the *canonical*
  design vector bytes (``DesignSpace.canonical``: rounded, signed zeros
  normalized), so re-querying an already-simulated sizing (duplicates from
  a collapsed elite region, integer rounding, or repeated trials on the same
  engine) never pays for a second simulation.  Under the ``remote`` backend
  this cache is the service's shared tier: the coordinator de-duplicates and
  memoizes before any chunk leaves the process, so a repeated design is
  simulated exactly once across all shards.  With ``cache_dir=`` the LRU
  spills to a persistent append-only store
  (:class:`~repro.core.diskcache.DiskCache`) shared between processes, so a
  repeated *sweep* answers duplicate designs with zero simulations even
  across runs.

The engine also snapshots the simulator's hot-path counters
(:mod:`repro.spice.profile`) around every dispatch, so
:meth:`EvalEngine.hotpath_report` can break simulation time into
assemble / solve / AC-solve / overhead phases — the numbers
``benchmarks/bench_spice_hotpath.py`` tracks across PRs.  ``process``
workers and ``remote`` shards measure the counters where the simulation
actually ran and ship the per-chunk deltas back, so the report is
backend-independent.

All backends return rows in input order, so an optimizer's history is
bit-identical no matter which backend ran the batch — the determinism and
regression tests in ``tests/core/test_eval_engine.py`` and
``tests/core/test_service.py`` pin this contract.

Two evaluation entry points share the cache and dispatch machinery:
:meth:`EvalEngine.evaluate_batch` blocks until the rows are back, while the
:meth:`EvalEngine.submit` / :meth:`EvalEngine.gather` pair is non-blocking —
``submit`` resolves cache hits synchronously, ships the misses to a
background dispatch thread, and returns an :class:`EvalHandle`; ``gather``
blocks on the handle.  Overlapping submits de-duplicate against each other
through an in-flight registry (a design pending in one batch is never
re-simulated by a later batch), which is what lets ``Study(pipeline_depth=d)``
keep ``d`` batches in flight without wasting simulations.

Problems are identified by a *content fingerprint* (a hash of their pickle)
rather than object identity: two fresh-but-identical instances — the
``problem_factory()``-per-trial pattern — share cache entries and, for the
``process`` backend, share the warm worker pool instead of tearing it down
every trial.  The engine holds only weak references to live problems, so a
long-lived engine never keeps dropped problems alive.

The process backend inherits the problem object through ``fork`` when the
platform supports it (no pickling of the problem per task); elsewhere the
problem is shipped to workers via the pool initializer, which requires it to
be picklable.  All bundled problems (synthetic suite and circuit sizing
problems) are plain-data objects and pickle cleanly.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import weakref
from collections import OrderedDict
from concurrent.futures import (CancelledError, Future, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from itertools import count
from time import perf_counter

import numpy as np

__all__ = ["EvalEngine", "EvalHandle", "default_workers"]

#: hot-path phases reported by :meth:`EvalEngine.hotpath_report`
_PHASES = ("assemble_s", "solve_s", "ac_build_s", "ac_solve_s")

#: env var naming default ``host:port`` shards for ``backend="remote"``
HOSTS_ENV = "REPRO_SERVICE_HOSTS"

#: env var naming a default on-disk cache directory (``cache_dir=``)
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: env var setting a default per-design remote eval deadline in seconds
#: (``chunk_timeout=``): a chunk of n designs must be answered within
#: chunk_timeout * n seconds or its host counts as hung.
CHUNK_TIMEOUT_ENV = "REPRO_CHUNK_TIMEOUT"


def _spice_counters():
    """The simulator's process-global counters (None when spice is absent)."""
    try:
        from repro.spice import profile
    except ImportError:  # pragma: no cover - spice is a hard dep in practice
        return None
    return profile

BACKENDS = ("serial", "thread", "process", "async", "remote")

# Problem handed to process-pool workers through the initializer (or, under
# fork, inherited directly from the parent's memory at pool creation).
_WORKER_PROBLEM = None


def _init_worker(problem) -> None:
    global _WORKER_PROBLEM
    _WORKER_PROBLEM = problem


def _eval_chunk(X: np.ndarray) -> tuple[np.ndarray, dict[str, float]]:
    """Process-pool task: evaluate a chunk of designs against the bound problem.

    Returns the rows *and* the worker-side hot-path counter deltas for the
    chunk, so the parent engine's :meth:`EvalEngine.hotpath_report` reflects
    work done inside the pool.
    """
    profile = _spice_counters()
    before = profile.snapshot() if profile is not None else None
    rows = np.vstack([_WORKER_PROBLEM.evaluate(x) for x in X])
    deltas = profile.delta(before) if profile is not None else {}
    return rows, {name: value for name, value in deltas.items() if value}


def default_workers() -> int:
    """Worker count matched to the visible CPUs (affinity-aware on Linux)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


class EvalHandle:
    """Ticket for a batch submitted via :meth:`EvalEngine.submit`.

    Redeem with :meth:`EvalEngine.gather` (on the engine that issued it) to
    block for the rows.  Handles are single-use value objects; they carry
    the per-design resolution — cached rows, and futures for designs that
    went (or were already) in flight — so ``gather`` never touches engine
    state beyond reading future results.
    """

    __slots__ = ("keys", "resolved", "waits")

    def __init__(self, keys, resolved, waits):
        self.keys = keys          # cache key per input row, in input order
        self.resolved = resolved  # key -> row answered at submit time
        self.waits = waits        # key -> Future[dict[key, row]]

    def done(self) -> bool:
        """True when every pending design's dispatch has completed."""
        return all(future.done() for future in self.waits.values())


class EvalEngine:
    """Dispatches batches of simulator evaluations, with caching.

    Parameters
    ----------
    backend:
        ``"serial"`` | ``"thread"`` | ``"process"`` | ``"async"`` | ``"remote"``.
    workers:
        Pool size for the parallel backends (default: visible CPU count).
    cache_size:
        Maximum number of memoized evaluations; ``0`` disables the cache
        (the disk tier included).
    cache_dir:
        Optional directory for the *persistent* cache tier (see
        :class:`~repro.core.diskcache.DiskCache`).  An in-memory miss falls
        through to disk before any simulation is dispatched, and every
        fresh row is appended, so repeated designs are answered with zero
        simulations across runs *and processes* sharing the directory.
        ``None`` (default) reads the ``REPRO_CACHE_DIR`` environment
        variable; pass ``""``/``False`` to force the disk tier off even
        when the variable is set.
    hosts:
        ``["host:port", ...]`` worker servers for the ``remote`` backend
        (default: the ``REPRO_SERVICE_HOSTS`` environment variable,
        comma-separated).  Start workers with
        ``python -m repro.core.service --port PORT``.
    dispatcher:
        A pre-built remote-style dispatcher — any object with
        ``dispatch(problem, token, X) -> (rows, counters, n_sims)`` and
        ``close()`` — used *instead of* constructing a
        :class:`~repro.core.service.RemoteDispatcher` from ``hosts``.
        Implies ``backend="remote"``.  This is how
        :meth:`~repro.core.fleet.FleetCoordinator.engine` hands each tenant
        a standard engine whose misses flow through the shared fleet
        scheduler; closing the engine closes (detaches) only the injected
        dispatcher, never the fleet behind it.
    chunk_timeout:
        Per-design deadline (seconds) for the ``remote`` backend: a chunk
        of ``n`` designs must be answered within ``chunk_timeout * n``
        seconds or the worker is treated as hung — a retryable transport
        failure under the bounded failover budget, surfacing as
        :class:`~repro.core.service.ServiceError` (never an indefinite
        hang) once every host is exhausted.  ``None`` (default) reads the
        ``REPRO_CHUNK_TIMEOUT`` environment variable; unset means no
        deadline (simulations may legitimately take minutes).
    degraded:
        ``"local"`` opts the ``remote`` backend into graceful degradation:
        with zero live workers, missing rows are evaluated in-process
        (logged and counted) instead of raising.  Default ``None`` keeps
        the strict fail-fast behaviour.

    The engine is reusable across batches and across optimizers sharing one
    problem; :meth:`close` (or use as a context manager) releases the pool
    and any service connections.
    """

    def __init__(self, backend: str = "serial", *, workers: int | None = None,
                 cache_size: int = 100_000, cache_dir=None, hosts=None,
                 dispatcher=None, chunk_timeout: float | None = None,
                 degraded: str | None = None):
        if dispatcher is not None:
            backend = "remote"
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if degraded not in (None, "local"):
            raise ValueError(f"degraded must be None or 'local', got {degraded!r}")
        if hosts is None:
            hosts = [h.strip() for h in os.environ.get(HOSTS_ENV, "").split(",")
                     if h.strip()]
        self.hosts = list(hosts)
        if backend == "remote" and not self.hosts and dispatcher is None:
            raise ValueError(
                f"remote backend needs hosts=['host:port', ...] or {HOSTS_ENV}")
        if chunk_timeout is None:
            env = os.environ.get(CHUNK_TIMEOUT_ENV, "").strip()
            chunk_timeout = float(env) if env else None
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be > 0 seconds")
        self.chunk_timeout = chunk_timeout
        self.degraded = degraded
        self.backend = backend
        self.workers = int(workers) if workers is not None else default_workers()
        self.cache_size = int(cache_size)
        self._cache: OrderedDict[bytes, np.ndarray] = OrderedDict()  # guarded by: _state_lock
        if cache_dir is None:
            cache_dir = os.environ.get(CACHE_DIR_ENV) or None
        self.cache_dir = os.fspath(cache_dir) if cache_dir else None
        self._disk = None
        if self.cache_dir and self.cache_size:
            from .diskcache import DiskCache
            self._disk = DiskCache(self.cache_dir)
        # Problem identity: content-fingerprint tokens held behind weakrefs.
        # ``_problem_tokens`` maps a *live* instance's id() to its token; the
        # paired weakref callback removes the entry when the instance dies,
        # so a recycled id can never alias a stale token and the engine never
        # pins dropped problems in memory.  Unpicklable problems fall back to
        # a unique anonymous token (and, if also un-weakref-able, a strong
        # pin — the pre-fingerprint behaviour).
        self._problem_tokens: dict[int, bytes] = {}   # guarded by: _state_lock
        self._problem_wrefs: dict[int, weakref.ref] = {}  # guarded by: _state_lock
        self._problem_pins: dict[int, object] = {}    # guarded by: _state_lock
        self._anon_tokens = count()
        self._executor = None          # guarded by: _state_lock
        self._executor_token: bytes | None = None  # pool's problem; guarded by: _state_lock
        self._async = None             # guarded by: _state_lock
        self._remote = dispatcher      # guarded by: _state_lock
        # Non-blocking submit/gather machinery: a small thread pool runs the
        # dispatches, ``_inflight`` maps each pending design's cache key to
        # the future that will produce its row (so overlapping submits never
        # simulate the same design twice), and ``_state_lock`` guards the
        # cache, counters and problem-token tables against those threads.
        self._submit_executor: ThreadPoolExecutor | None = None  # guarded by: _state_lock
        self._inflight: dict[bytes, object] = {}      # guarded by: _state_lock
        self._state_lock = threading.RLock()
        self._closed = False                          # guarded by: _state_lock
        self.n_sim_calls = 0    # dispatched to the simulator; guarded by: _state_lock
        self.n_cache_hits = 0   # answered from the cache; guarded by: _state_lock
        self.n_disk_hits = 0    # ...from the persistent tier; guarded by: _state_lock
        self.n_dedup = 0        # answered by an in-batch/in-flight twin; guarded by: _state_lock
        self.n_pool_builds = 0  # pools built over the lifetime; guarded by: _state_lock
        self.worker_sim_calls = 0  # sims reported by remote shards; guarded by: _state_lock
        # Per-phase hot-path breakdown, accumulated from the simulator's
        # counters around each dispatch; process/remote backends fold in the
        # per-chunk deltas their workers report back.
        self.dispatch_seconds = 0.0                   # guarded by: _state_lock
        self.phase_counters: dict[str, float] = {}    # guarded by: _state_lock

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Shut down any worker pool / dispatcher connections (idempotent).

        Safe to call with a :meth:`submit` batch still in flight: the
        dispatchers are torn down *first*, so a dispatch thread blocked on
        a remote socket errors out immediately (its :meth:`gather` raises)
        instead of pinning the submit pool's ``shutdown(wait=True)`` —
        previously that ordering could deadlock ``close()`` and leave
        ``gather()`` hanging forever on a dead service.  Batches that were
        queued but not yet started are cancelled, and their ``gather``
        raises too.  A closed engine rejects further :meth:`submit` calls.
        """
        # Swap every handle out under the lock (concurrent close()/dispatch
        # calls then agree on one owner per handle), but run the blocking
        # teardown *outside* it: submit-pool threads take _state_lock
        # themselves, so holding it across shutdown(wait=True) would
        # deadlock.
        with self._state_lock:
            self._closed = True
            async_d, self._async = self._async, None
            remote, self._remote = self._remote, None
            submit, self._submit_executor = self._submit_executor, None
        if async_d is not None:
            async_d.close()
        if remote is not None:
            remote.close()
        if submit is not None:
            submit.shutdown(wait=True, cancel_futures=True)
            with self._state_lock:
                self._inflight.clear()
        with self._state_lock:
            stale = self._retire_worker_pool_locked()
        if stale is not None:
            stale.shutdown(wait=True)
        if self._disk is not None:
            self._disk.close()

    def _retire_worker_pool_locked(self):  # holds: _state_lock
        """Detach the thread/process worker pool; the caller shuts it down.

        Separate from :meth:`close` because a problem switch under the
        process backend retires the old pool from *inside* a submit-pool
        dispatch thread — which must never try to shut down (and join) the
        submit pool it is running on.  The swap happens under
        ``_state_lock`` so concurrent callers agree on one owner, but the
        blocking ``shutdown(wait=True)`` (a pool join) is the caller's job
        *after releasing the lock* — holding the hot state lock across a
        join stalls every concurrent dispatch/counter fold (RP07).
        """
        stale, self._executor = self._executor, None
        self._executor_token = None
        return stale

    def clear_cache(self) -> None:
        """Drop every in-memory cache entry (thread-safe).

        Taken under ``_state_lock`` so it cannot race the submit-pool
        threads that read/write the cache mid-dispatch.  Only the RAM tier
        is dropped: the persistent disk tier (``cache_dir``) keeps its
        entries *and* its index — this method means "free memory", not
        "forget results"; a later miss may still be answered from disk.
        To actually discard persisted results, delete the directory (or
        rewrite it with ``python -m repro.core.diskcache --compact``).
        """
        with self._state_lock:
            self._cache.clear()

    def __enter__(self) -> "EvalEngine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- evaluation --------------------------------------------------------
    def evaluate_one(self, problem, x: np.ndarray) -> np.ndarray:
        """Single-design convenience wrapper around :meth:`evaluate_batch`."""
        return self.evaluate_batch(problem, np.asarray(x)[None, :])[0]

    def evaluate_batch(self, problem, X: np.ndarray) -> np.ndarray:
        """Raw performance rows for a batch of designs, in input order.

        Designs are canonicalized through ``problem.space.canonical``
        (rounded to the sizing that would be simulated, signed zeros
        normalized) before hashing, so a rounded and an unrounded view of
        the same integer design always share one cache/dedup entry.
        Duplicate designs within one batch are simulated once (cache enabled
        or not), and a design already in flight from an outstanding
        :meth:`submit` is *waited for*, never re-simulated — the blocking
        path goes through the same in-flight registry as the pipelined one
        (previously it raced a concurrent submit of the same design into a
        second simulation whose result clobbered the first in the cache).

        Scenario wrappers (:mod:`repro.scenarios`) are recognized by their
        ``scenario_evaluate`` hook and fan each design out to per-variant
        engine batches instead of being dispatched (and fingerprinted)
        directly — duck-typed so this module never imports the subsystem.
        """
        fan = getattr(problem, "scenario_evaluate", None)
        if fan is not None:
            return fan(self, X)
        X = problem.space.canonical(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        token = self._problem_token(problem)
        keys = [self._key(token, x) for x in X]

        # Resolve cache hits, in-batch duplicates and in-flight twins before
        # dispatching; register our own pending designs so a concurrent
        # submit() dedups against this blocking batch too.
        key_to_row: dict[bytes, np.ndarray] = {}
        waits: dict[bytes, object] = {}
        pending_keys: list[bytes] = []
        pending_rows: list[np.ndarray] = []
        own_future: Future | None = None
        with self._state_lock:
            for key, x in zip(keys, X):
                if key in key_to_row or key in waits:
                    self.n_dedup += 1
                    continue
                cached = self._cache_get(key)
                if cached is not None:
                    key_to_row[key] = cached
                    self.n_cache_hits += 1
                    continue
                inflight = self._inflight.get(key)
                if inflight is not None:
                    waits[key] = inflight
                    self.n_dedup += 1
                    continue
                key_to_row[key] = None  # placeholder, filled after dispatch
                pending_keys.append(key)
                pending_rows.append(x)
            if pending_rows:
                own_future = Future()
                own_future.set_running_or_notify_cancel()
                for key in pending_keys:
                    self._inflight[key] = own_future

        if pending_rows:
            profile = _spice_counters()
            before = profile.snapshot() if profile is not None else None
            t0 = perf_counter()
            try:
                fresh = self._dispatch(problem, np.asarray(pending_rows), token)
            except BaseException as exc:
                with self._state_lock:
                    for key in pending_keys:
                        self._inflight.pop(key, None)
                own_future.set_exception(exc)
                raise
            elapsed = perf_counter() - t0
            with self._state_lock:
                self.dispatch_seconds += elapsed
                if before is not None:
                    for name, value in profile.delta(before).items():
                        self.phase_counters[name] = self.phase_counters.get(name, 0.0) + value
                self.n_sim_calls += len(pending_rows)
                durable = self._durable(token)
                for key, row in zip(pending_keys, fresh):
                    key_to_row[key] = row
                    self._cache_put(key, row, durable)
                    self._inflight.pop(key, None)
            own_future.set_result(dict(zip(pending_keys, fresh)))

        for key, future in waits.items():
            # Designs owned by a concurrent submit: block for *its* rows.
            key_to_row[key] = future.result()[key]

        return np.vstack([key_to_row[key] for key in keys])

    # -- non-blocking evaluation -------------------------------------------
    def submit(self, problem, X: np.ndarray) -> EvalHandle:
        """Start evaluating a batch without blocking; returns an :class:`EvalHandle`.

        The cache and dedup phases run synchronously (a fully-cached batch
        costs no thread hop); only the designs that actually need the
        simulator are dispatched on a background thread.  A design already
        in flight from an *earlier* outstanding submit is shared, not
        re-simulated — the handle waits on the same future.  This is the
        primitive under :class:`repro.core.Study`'s pipelined mode, which
        overlaps the optimizer's next proposal batch with these in-flight
        evaluations.

        Under overlapping submits the per-phase hot-path counters may
        double-count concurrent windows (the process-global simulator
        counters cannot be attributed per dispatch); the cache/dedup/call
        counters stay exact.

        Scenario wrappers submit through their own ``scenario_submit`` hook,
        which returns a duck-typed handle driving the per-variant fan-out;
        :meth:`gather` routes it back to the wrapper.
        """
        fan = getattr(problem, "scenario_submit", None)
        if fan is not None:
            return fan(self, X)
        X = problem.space.canonical(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        token = self._problem_token(problem)
        keys = [self._key(token, x) for x in X]
        resolved: dict[bytes, np.ndarray] = {}
        waits: dict[bytes, object] = {}
        pending_keys: list[bytes] = []
        pending_rows: list[np.ndarray] = []
        with self._state_lock:
            for key, x in zip(keys, X):
                if key in resolved or key in waits or key in pending_keys:
                    self.n_dedup += 1
                    continue
                cached = self._cache_get(key)
                if cached is not None:
                    resolved[key] = cached
                    self.n_cache_hits += 1
                    continue
                inflight = self._inflight.get(key)
                if inflight is not None:
                    waits[key] = inflight
                    self.n_dedup += 1
                    continue
                pending_keys.append(key)
                pending_rows.append(x)
            if pending_rows:
                future = self._submit_pool().submit(
                    self._run_submitted, problem, np.asarray(pending_rows),
                    token, tuple(pending_keys))
                for key in pending_keys:
                    self._inflight[key] = future
                    waits[key] = future
        return EvalHandle(keys, resolved, waits)

    def gather(self, handle) -> np.ndarray:
        """Rows for a submitted batch, in input order (blocks until done).

        Raises whatever the dispatch raised; a batch cancelled by
        :meth:`close` before it started raises a ``RuntimeError`` instead
        of blocking forever on a ticket nobody will redeem.

        Duck-typed scenario handles (anything that is not an
        :class:`EvalHandle`) gather themselves against this engine — that
        is where the scenario fan-out's second wave runs.
        """
        if not isinstance(handle, EvalHandle):
            return handle.gather(self)
        rows = dict(handle.resolved)
        for key, future in handle.waits.items():
            try:
                rows[key] = future.result()[key]
            except CancelledError:
                raise RuntimeError(
                    "EvalEngine was closed while the submitted batch was "
                    "still pending") from None
        return np.vstack([rows[key] for key in handle.keys])

    def _run_submitted(self, problem, X: np.ndarray, token: bytes,
                       keys: tuple[bytes, ...]) -> dict[bytes, np.ndarray]:
        """Background-thread body of one submit: dispatch + bookkeeping."""
        profile = _spice_counters()
        before = profile.snapshot() if profile is not None else None
        t0 = perf_counter()
        try:
            fresh = self._dispatch(problem, X, token)
        except BaseException:
            with self._state_lock:
                for key in keys:
                    self._inflight.pop(key, None)
            raise
        elapsed = perf_counter() - t0
        with self._state_lock:
            self.dispatch_seconds += elapsed
            if before is not None:
                for name, value in profile.delta(before).items():
                    self.phase_counters[name] = self.phase_counters.get(name, 0.0) + value
            self.n_sim_calls += len(X)
            durable = self._durable(token)
            for key, row in zip(keys, fresh):
                self._cache_put(key, row, durable)
                self._inflight.pop(key, None)
        return dict(zip(keys, fresh))

    def _submit_pool(self) -> ThreadPoolExecutor:  # holds: _state_lock
        if self._closed:
            raise RuntimeError("EvalEngine is closed")
        if self._submit_executor is None:
            self._submit_executor = ThreadPoolExecutor(
                max_workers=max(4, self.workers),
                thread_name_prefix="eval-submit")
        return self._submit_executor

    # -- problem identity --------------------------------------------------
    def _problem_token(self, problem) -> bytes:
        """Stable token for a problem: content fingerprint, weakly held.

        The fingerprint is computed once per live instance (first sight), so
        cache keys stay stable even for problems that mutate internal state
        while being evaluated.
        """
        with self._state_lock:
            return self._problem_token_locked(problem)

    def _problem_token_locked(self, problem) -> bytes:  # holds: _state_lock
        # id() only keys the per-live-instance memo; the cache key that
        # reaches results is the content fingerprint below, which is stable
        # across runs.  # lint: disable=RP01
        pid = id(problem)
        token = self._problem_tokens.get(pid)
        if token is not None:
            return token
        token = self._fingerprint(problem)
        if token is None:
            # Unpicklable problem: no content identity.  The random suffix
            # keeps two engines' (or processes') anonymous tokens from ever
            # colliding; anonymous keys are additionally kept out of the
            # persistent disk tier (see ``_cache_put``) — a counter-based
            # token restarting at 0 per process used to let two *different*
            # unpicklable problems answer each other's designs from disk.
            token = b"anon:%d:" % next(self._anon_tokens) + os.urandom(8)
        self._problem_tokens[pid] = token
        tokens, wrefs, pins = (self._problem_tokens, self._problem_wrefs,
                               self._problem_pins)

        def _forget(_ref, pid=pid) -> None:
            tokens.pop(pid, None)
            wrefs.pop(pid, None)

        try:
            self._problem_wrefs[pid] = weakref.ref(problem, _forget)
        except TypeError:
            # Not weakref-able (e.g. __slots__ without __weakref__): pin it
            # so the id stays unique for the engine's lifetime.
            pins[pid] = problem
        return token

    @staticmethod
    def _fingerprint(problem) -> bytes | None:
        try:
            blob = pickle.dumps(problem, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return None
        return hashlib.blake2b(blob, digest_size=16).digest()

    @staticmethod
    def _durable(problem_token: bytes) -> bool:
        """Only content-fingerprinted problems may touch the disk tier: an
        anonymous token has no cross-process identity, so persisting its
        keys could only ever produce collisions, never legitimate hits."""
        return not problem_token.startswith(b"anon:")

    @staticmethod
    def _key(problem_token: bytes, x: np.ndarray) -> bytes:
        digest = hashlib.blake2b(np.ascontiguousarray(x).tobytes(),
                                 digest_size=16)
        digest.update(problem_token)
        return digest.digest()

    # -- cache -------------------------------------------------------------
    def _cache_get(self, key: bytes) -> np.ndarray | None:  # holds: _state_lock
        if self.cache_size == 0:
            return None
        row = self._cache.get(key)
        if row is not None:
            self._cache.move_to_end(key)
            return row
        if self._disk is not None:
            row = self._disk.get(key)
            if row is not None:
                # Promote without re-appending: the entry is already durable.
                self.n_disk_hits += 1
                self._cache[key] = row
                self._cache.move_to_end(key)
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
                return row
        return None

    def _cache_put(self, key: bytes, row: np.ndarray,
                   durable: bool = True) -> None:  # holds: _state_lock
        if self.cache_size == 0:
            return
        self._cache[key] = row
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        # Straggler dispatch threads may complete after close(); the closed
        # check (and DiskCache's own put-after-close no-op) keeps them from
        # hitting the closed writer handle.
        if durable and self._disk is not None and not self._closed:
            self._disk.put(key, row)

    def seed_cache(self, problem, X: np.ndarray, F: np.ndarray) -> int:
        """Pre-load known evaluations (e.g. a donor run's archive).

        Each ``(design, row)`` pair is canonicalized, keyed exactly like a
        fresh evaluation, and stored in the memory cache (and the disk tier
        when configured) — so a warm-started optimizer that re-proposes a
        donor design is answered without a simulation.  Existing entries
        are never overwritten.  Returns the number of entries added.
        """
        X = problem.space.canonical(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        F = np.atleast_2d(np.asarray(F, dtype=np.float64))
        if len(X) != len(F):
            raise ValueError(f"seed_cache got {len(X)} designs but {len(F)} rows")
        if self.cache_size == 0:
            return 0
        added = 0
        with self._state_lock:
            token = self._problem_token_locked(problem)
            durable = self._durable(token)
            for x, row in zip(X, F):
                key = self._key(token, x)
                if key in self._cache or (self._disk is not None
                                          and key in self._disk):
                    continue
                self._cache_put(key, row.copy(), durable)
                added += 1
        return added

    # -- dispatch ----------------------------------------------------------
    def _dispatch(self, problem, X: np.ndarray, token: bytes) -> np.ndarray:
        if self.backend == "remote":
            rows, counters, n_sims = self._remote_dispatcher().dispatch(
                problem, token, X)
            with self._state_lock:  # overlapping submits fold concurrently
                for name, value in counters.items():
                    self.phase_counters[name] = self.phase_counters.get(name, 0.0) + value
                self.worker_sim_calls += n_sims
            return rows
        if self.backend == "serial" or len(X) == 1:
            return np.vstack([problem.evaluate(x) for x in X])
        if self.backend == "async":
            return self._async_dispatcher().dispatch(problem, X)
        chunks = np.array_split(X, min(len(X), self.workers))
        chunks = [c for c in chunks if len(c)]
        if self.backend == "thread":
            executor = self._thread_executor()
            return np.vstack(list(executor.map(
                lambda chunk: np.vstack([problem.evaluate(x) for x in chunk]),
                chunks)))
        import multiprocessing as mp
        if mp.current_process().daemon:
            # Daemonic contexts (e.g. fork-pool trial workers) cannot spawn
            # pool children; degrade to the serial loop, same as the trial
            # runner's own fallback.  Results are unchanged either way.
            return np.vstack([problem.evaluate(x) for x in X])
        executor = self._process_executor(problem, token)
        rows = []
        for chunk_rows, deltas in executor.map(_eval_chunk, chunks):
            rows.append(chunk_rows)
            with self._state_lock:  # overlapping submits fold concurrently
                for name, value in deltas.items():
                    self.phase_counters[name] = self.phase_counters.get(name, 0.0) + value
        return np.vstack(rows)

    def _thread_executor(self) -> ThreadPoolExecutor:
        with self._state_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
            return self._executor

    def _process_executor(self, problem, token: bytes) -> ProcessPoolExecutor:
        # The pool binds one problem (via fork inheritance or initializer).
        # Rebuild only when the *content* changes: fresh-but-identical
        # instances (the problem_factory()-per-trial pattern) keep the warm
        # pool, whose bound copy evaluates identically.  Locked so
        # overlapping submit() dispatch threads agree on one pool, and
        # retiring only the worker pool (never the submit pool this thread
        # may be running on).
        while True:
            with self._state_lock:
                stale = None
                if (self._executor is not None
                        and self._executor_token != token):
                    stale = self._retire_worker_pool_locked()
                if stale is None:
                    if self._executor is None:
                        import multiprocessing as mp
                        kwargs = {}
                        if "fork" in mp.get_all_start_methods():
                            kwargs["mp_context"] = mp.get_context("fork")
                        self._executor = ProcessPoolExecutor(
                            max_workers=self.workers, initializer=_init_worker,
                            initargs=(problem,), **kwargs)
                        self._executor_token = token
                        self.n_pool_builds += 1
                    return self._executor
            # The retired pool joins its workers outside the lock (RP07):
            # a concurrent dispatch thread folding per-chunk counters must
            # not stall behind the old pool's shutdown.  Loop to re-check —
            # another thread may have built the new pool meanwhile.
            stale.shutdown(wait=True)

    def _async_dispatcher(self):
        with self._state_lock:
            if self._async is None:
                if self._closed:
                    raise RuntimeError("EvalEngine is closed")
                from .service import AsyncDispatcher
                self._async = AsyncDispatcher(self.workers)
            return self._async

    def _remote_dispatcher(self):
        with self._state_lock:
            if self._remote is None:
                if self._closed:
                    raise RuntimeError("EvalEngine is closed")
                from .service import RemoteDispatcher
                self._remote = RemoteDispatcher(self.hosts,
                                                chunk_timeout=self.chunk_timeout,
                                                degraded=self.degraded)
            return self._remote

    # -- hot-path reporting ------------------------------------------------
    def hotpath_report(self) -> dict[str, float]:
        """Assemble/solve/overhead breakdown of the simulator time dispatched
        through this engine.

        ``overhead_s`` is dispatch wall-clock not attributed to a counted
        phase (testbench logic, waveform post-processing, engine/pool/wire
        overhead).  The breakdown is backend-independent: ``process`` workers
        and ``remote`` shards measure the counters where the simulation ran
        and ship the per-chunk deltas back with each result.
        """
        with self._state_lock:
            report = {name: self.phase_counters.get(name, 0.0)
                      for name in _PHASES}
            for extra in ("newton_iterations", "newton_solves", "ac_solves"):
                report[extra] = self.phase_counters.get(extra, 0.0)
            report["dispatch_s"] = self.dispatch_seconds
            report["overhead_s"] = max(
                0.0,
                self.dispatch_seconds - sum(report[name] for name in _PHASES))
            report["n_sim_calls"] = float(self.n_sim_calls)
        return report

    def counters_snapshot(self) -> dict:
        """Point-in-time consistent copy of the cache/dispatch counters.

        The one sanctioned way for *other* threads and objects (worker
        stats, fleet telemetry, study summaries) to read the counters:
        every field comes from the same instant under ``_state_lock``,
        instead of a torn unlocked read per attribute.
        """
        with self._state_lock:
            return {"n_sim_calls": self.n_sim_calls,
                    "n_cache_hits": self.n_cache_hits,
                    "n_disk_hits": self.n_disk_hits,
                    "n_dedup": self.n_dedup,
                    "n_pool_builds": self.n_pool_builds,
                    "worker_sim_calls": self.worker_sim_calls,
                    "cache_entries": len(self._cache),
                    "dispatch_seconds": self.dispatch_seconds}

    def __repr__(self) -> str:
        hosts = f", hosts={self.hosts!r}" if self.backend == "remote" else ""
        disk = f", cache_dir={self.cache_dir!r}" if self.cache_dir else ""
        with self._state_lock:
            entries = len(self._cache)
        return (f"EvalEngine(backend={self.backend!r}, workers={self.workers}, "
                f"cache={entries}/{self.cache_size}{hosts}{disk})")
