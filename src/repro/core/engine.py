"""Batched, optionally parallel problem evaluation with result caching.

Every optimizer in this package funnels its simulator queries through an
:class:`EvalEngine`.  The engine owns two orthogonal concerns:

* **dispatch** — how a batch of designs is turned into performance rows.
  Three backends are provided: ``serial`` (in-process loop, the default),
  ``thread`` (a :class:`~concurrent.futures.ThreadPoolExecutor`; useful when
  the simulator releases the GIL or blocks on I/O), and ``process`` (a
  process pool; true CPU parallelism for the pure-python SPICE engine).
* **memoization** — a content-hashed LRU cache keyed on the *rounded* design
  vector bytes, so re-querying an already-simulated sizing (duplicates from
  a collapsed elite region, integer rounding, or repeated trials on the same
  engine) never pays for a second simulation.

The engine also snapshots the simulator's hot-path counters
(:mod:`repro.spice.profile`) around every dispatch, so
:meth:`EvalEngine.hotpath_report` can break simulation time into
assemble / solve / AC-solve / overhead phases — the numbers
``benchmarks/bench_spice_hotpath.py`` tracks across PRs.

All backends return rows in input order, so an optimizer's history is
bit-identical no matter which backend ran the batch — the determinism and
regression tests in ``tests/core/test_eval_engine.py`` pin this contract.

The process backend inherits the problem object through ``fork`` when the
platform supports it (no pickling of the problem per task); elsewhere the
problem is shipped to workers via the pool initializer, which requires it to
be picklable.  All bundled problems (synthetic suite and circuit sizing
problems) are plain-data objects and pickle cleanly.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from time import perf_counter

import numpy as np

__all__ = ["EvalEngine", "default_workers"]

#: hot-path phases reported by :meth:`EvalEngine.hotpath_report`
_PHASES = ("assemble_s", "solve_s", "ac_build_s", "ac_solve_s")


def _spice_counters():
    """The simulator's process-global counters (None when spice is absent)."""
    try:
        from repro.spice import profile
    except ImportError:  # pragma: no cover - spice is a hard dep in practice
        return None
    return profile

BACKENDS = ("serial", "thread", "process")

# Problem handed to process-pool workers through the initializer (or, under
# fork, inherited directly from the parent's memory at pool creation).
_WORKER_PROBLEM = None


def _init_worker(problem) -> None:
    global _WORKER_PROBLEM
    _WORKER_PROBLEM = problem


def _eval_chunk(X: np.ndarray) -> np.ndarray:
    """Process-pool task: evaluate a chunk of designs against the bound problem."""
    return np.vstack([_WORKER_PROBLEM.evaluate(x) for x in X])


def default_workers() -> int:
    """Worker count matched to the visible CPUs (affinity-aware on Linux)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


class EvalEngine:
    """Dispatches batches of simulator evaluations, with caching.

    Parameters
    ----------
    backend:
        ``"serial"`` | ``"thread"`` | ``"process"``.
    workers:
        Pool size for the parallel backends (default: visible CPU count).
    cache_size:
        Maximum number of memoized evaluations; ``0`` disables the cache.

    The engine is reusable across batches and across optimizers sharing one
    problem; :meth:`close` (or use as a context manager) releases the pool.
    """

    def __init__(self, backend: str = "serial", *, workers: int | None = None,
                 cache_size: int = 100_000):
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.backend = backend
        self.workers = int(workers) if workers is not None else default_workers()
        self.cache_size = int(cache_size)
        self._cache: OrderedDict[bytes, np.ndarray] = OrderedDict()
        # Per-instance tokens so two same-named but differently-configured
        # problems sharing one engine can never collide in the cache.  The
        # strong refs keep id() values unique for the engine's lifetime.
        self._problem_tokens: dict[int, int] = {}
        self._problem_refs: list = []
        self._executor = None
        self._executor_problem = None  # problem the process pool was built for
        self.n_sim_calls = 0   # designs actually dispatched to the simulator
        self.n_cache_hits = 0  # designs answered from the cache
        # Per-phase hot-path breakdown, accumulated from the simulator's
        # counters around each dispatch (serial/thread backends only: a
        # process pool's counters live in its workers).
        self.dispatch_seconds = 0.0
        self.phase_counters: dict[str, float] = {}

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Shut down any live worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._executor_problem = None

    def clear_cache(self) -> None:
        self._cache.clear()

    def __enter__(self) -> "EvalEngine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- evaluation --------------------------------------------------------
    def evaluate_one(self, problem, x: np.ndarray) -> np.ndarray:
        """Single-design convenience wrapper around :meth:`evaluate_batch`."""
        return self.evaluate_batch(problem, np.asarray(x)[None, :])[0]

    def evaluate_batch(self, problem, X: np.ndarray) -> np.ndarray:
        """Raw performance rows for a batch of designs, in input order.

        Designs are rounded through ``problem.space.round`` before hashing so
        the cache key always matches the sizing that would be simulated.
        Duplicate designs within one batch are simulated once.
        """
        X = problem.space.round(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        token = self._problem_token(problem)
        keys = [self._key(token, x) for x in X]

        # Resolve cache hits and in-batch duplicates before dispatching.
        key_to_row: dict[bytes, np.ndarray] = {}
        pending_keys: list[bytes] = []
        pending_rows: list[np.ndarray] = []
        for key, x in zip(keys, X):
            if key in key_to_row:
                continue
            cached = self._cache_get(key)
            if cached is not None:
                key_to_row[key] = cached
                self.n_cache_hits += 1
            else:
                key_to_row[key] = None  # placeholder, filled after dispatch
                pending_keys.append(key)
                pending_rows.append(x)

        if pending_rows:
            profile = _spice_counters()
            before = profile.snapshot() if profile is not None else None
            t0 = perf_counter()
            fresh = self._dispatch(problem, np.asarray(pending_rows))
            self.dispatch_seconds += perf_counter() - t0
            if before is not None:
                for name, value in profile.delta(before).items():
                    self.phase_counters[name] = self.phase_counters.get(name, 0.0) + value
            self.n_sim_calls += len(pending_rows)
            for key, row in zip(pending_keys, fresh):
                key_to_row[key] = row
                self._cache_put(key, row)

        return np.vstack([key_to_row[key] for key in keys])

    # -- cache -------------------------------------------------------------
    def _problem_token(self, problem) -> int:
        token = self._problem_tokens.get(id(problem))
        if token is None:
            token = len(self._problem_refs)
            self._problem_tokens[id(problem)] = token
            self._problem_refs.append(problem)
        return token

    @staticmethod
    def _key(problem_token: int, x: np.ndarray) -> bytes:
        digest = hashlib.blake2b(np.ascontiguousarray(x).tobytes(),
                                 digest_size=16)
        digest.update(str(problem_token).encode())
        return digest.digest()

    def _cache_get(self, key: bytes) -> np.ndarray | None:
        if self.cache_size == 0:
            return None
        row = self._cache.get(key)
        if row is not None:
            self._cache.move_to_end(key)
        return row

    def _cache_put(self, key: bytes, row: np.ndarray) -> None:
        if self.cache_size == 0:
            return
        self._cache[key] = row
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # -- dispatch ----------------------------------------------------------
    def _dispatch(self, problem, X: np.ndarray) -> np.ndarray:
        if self.backend == "serial" or len(X) == 1:
            return np.vstack([problem.evaluate(x) for x in X])
        chunks = np.array_split(X, min(len(X), self.workers))
        chunks = [c for c in chunks if len(c)]
        if self.backend == "thread":
            executor = self._thread_executor()
            results = list(executor.map(
                lambda chunk: np.vstack([problem.evaluate(x) for x in chunk]),
                chunks))
        else:
            executor = self._process_executor(problem)
            results = list(executor.map(_eval_chunk, chunks))
        return np.vstack(results)

    def _thread_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.workers)
        return self._executor

    def _process_executor(self, problem) -> ProcessPoolExecutor:
        # The pool binds one problem (via fork inheritance or initializer);
        # rebuild it if the engine is reused with a different problem.
        if self._executor is not None and self._executor_problem is not problem:
            self.close()
        if self._executor is None:
            import multiprocessing as mp
            kwargs = {}
            if "fork" in mp.get_all_start_methods():
                kwargs["mp_context"] = mp.get_context("fork")
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, initializer=_init_worker,
                initargs=(problem,), **kwargs)
            self._executor_problem = problem
        return self._executor

    # -- hot-path reporting ------------------------------------------------
    def hotpath_report(self) -> dict[str, float]:
        """Assemble/solve/overhead breakdown of the simulator time dispatched
        through this engine.

        ``overhead_s`` is dispatch wall-clock not attributed to a counted
        phase (testbench logic, waveform post-processing, engine/pool
        overhead).  With the ``process`` backend the per-phase counters stay
        in the workers, so only ``dispatch_s`` is meaningful there.
        """
        report = {name: self.phase_counters.get(name, 0.0) for name in _PHASES}
        report["newton_iterations"] = self.phase_counters.get("newton_iterations", 0.0)
        report["newton_solves"] = self.phase_counters.get("newton_solves", 0.0)
        report["ac_solves"] = self.phase_counters.get("ac_solves", 0.0)
        report["dispatch_s"] = self.dispatch_seconds
        report["overhead_s"] = max(
            0.0, self.dispatch_seconds - sum(report[name] for name in _PHASES))
        report["n_sim_calls"] = float(self.n_sim_calls)
        return report

    def __repr__(self) -> str:
        return (f"EvalEngine(backend={self.backend!r}, workers={self.workers}, "
                f"cache={len(self._cache)}/{self.cache_size})")
