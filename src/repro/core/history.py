"""Optimization run records and the ask/tell optimizer core.

:class:`OptimizationHistory` stores each simulated design with its raw
performance row, FoM value and feasibility flag, and accounts simulator
time and model-building time separately — exactly the quantities reported
in Tables II/IV/V of the paper (success, sims-to-first-feasible, objective
statistics, modeling/simulation time).  It round-trips through plain JSON
(:meth:`OptimizationHistory.to_dict` / :meth:`OptimizationHistory.from_dict`),
which is what :meth:`repro.core.Study.save` checkpoints are made of.

:class:`Optimizer` is the *ask/tell* core shared by DNN-Opt and every
baseline: :meth:`Optimizer.ask` proposes the next designs to simulate and
:meth:`Optimizer.tell` feeds the measured rows back.  The optimizer never
drives its own evaluation loop — budget, dispatch, stop conditions,
callbacks and checkpointing belong to :class:`repro.core.Study`, and
:meth:`Optimizer.run` is a thin compatibility shim that builds a default
(non-pipelined) study.  Inverting control this way lets one driver overlap
proposal generation with in-flight evaluations (``Study(pipeline_depth=d)``),
checkpoint and resume runs, and compose optimizers into larger scenarios.
"""

from __future__ import annotations

import time
import warnings
from abc import ABC
from typing import Any

import numpy as np

from .engine import EvalEngine
from .fom import fom_from_raw

__all__ = ["BudgetExhausted", "OptimizationHistory", "Optimizer"]


class BudgetExhausted(Exception):
    """No simulation budget left for another :meth:`Optimizer.evaluate` call.

    Raised by the legacy :meth:`Optimizer.evaluate` /
    :meth:`Optimizer.evaluate_batch` entry points once
    ``history.n_evals == budget`` (and, with ``stop_when_feasible``, as soon
    as a feasible design lands).  :meth:`Optimizer.run` catches it to end a
    legacy ``_run`` loop; code that calls ``evaluate()`` *directly* — outside
    any driver — must be prepared to catch it too, which is why it is public
    API (``repro.core.BudgetExhausted``).  The ask/tell protocol never raises
    it: budget discipline there belongs to :class:`repro.core.Study`.
    """


class OptimizationHistory:
    """Append-only record of an optimization run.

    A history may start with a *warm prefix*: ``n_warm`` leading rows that
    were transferred from a donor run (see :mod:`repro.core.warmstart`)
    rather than simulated by this run.  Archive views (:attr:`X`, :attr:`F`,
    :attr:`fom`, :attr:`best_index`, ...) span the full record — the
    knowledge the run conditions on — while the *cost* accounting
    (:attr:`n_evals`, :attr:`evals_to_first_feasible`) counts only the
    fresh rows this run actually paid simulations for.  Histories without a
    warm start have ``n_warm == 0`` and behave exactly as before.
    """

    def __init__(self, problem: Any, optimizer_name: str, seed: int) -> None:
        self.problem = problem
        self.optimizer_name = optimizer_name
        self.seed = seed
        self._X: list[np.ndarray] = []
        self._F: list[np.ndarray] = []
        self._fom: list[float] = []
        self._feasible: list[bool] = []
        self.modeling_time = 0.0
        self.simulation_time = 0.0
        #: leading rows transferred from a donor run (cost-free for this run)
        self.n_warm = 0
        #: engine cache/dedup counter deltas for the run that produced this
        #: history (attached by the Study driver; ``None`` until a run ends).
        self.engine_stats: dict | None = None

    # -- recording ---------------------------------------------------------
    def append(self, x: np.ndarray, f_raw: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float64).ravel()
        f_raw = np.asarray(f_raw, dtype=np.float64).ravel()
        self._X.append(x)
        self._F.append(f_raw)
        self._fom.append(float(fom_from_raw(self.problem, f_raw[None, :])[0]))
        self._feasible.append(bool(self.problem.is_feasible(f_raw[None, :])[0]))

    # -- array views --------------------------------------------------------
    @property
    def X(self) -> np.ndarray:
        return np.asarray(self._X) if self._X else np.empty((0, self.problem.dim))

    @property
    def F(self) -> np.ndarray:
        cols = 1 + self.problem.num_constraints
        return np.asarray(self._F) if self._F else np.empty((0, cols))

    @property
    def fom(self) -> np.ndarray:
        return np.asarray(self._fom)

    @property
    def feasible(self) -> np.ndarray:
        return np.asarray(self._feasible, dtype=bool)

    @property
    def n_evals(self) -> int:
        """Simulations *this run* paid for (the warm prefix is free)."""
        return len(self._X) - self.n_warm

    @property
    def n_total(self) -> int:
        """All archive rows, warm prefix included."""
        return len(self._X)

    # -- summaries -----------------------------------------------------------
    @property
    def best_index(self) -> int:
        """Design with the lowest FoM (the paper's Algorithm 1 return)."""
        if not self._fom:
            raise ValueError("empty history")
        return int(np.argmin(self._fom))

    @property
    def best_x(self) -> np.ndarray:
        return self.X[self.best_index]

    @property
    def best_fom(self) -> float:
        return float(np.min(self._fom))

    @property
    def any_feasible(self) -> bool:
        return any(self._feasible)

    @property
    def evals_to_first_feasible(self) -> int | None:
        """1-based simulation count at the first feasible design (None if
        never).  Counts fresh rows only: a feasible donor row in the warm
        prefix cost this run nothing and is not a simulation spent."""
        for i, ok in enumerate(self._feasible[self.n_warm:]):
            if ok:
                return i + 1
        return None

    @property
    def best_feasible_index(self) -> int | None:
        """Feasible design with the lowest raw objective."""
        if not self.any_feasible:
            return None
        F = self.F
        objective = np.where(self.feasible, F[:, 0], np.inf)
        return int(np.argmin(objective))

    @property
    def best_feasible_objective(self) -> float | None:
        index = self.best_feasible_index
        return None if index is None else float(self.F[index, 0])

    def fom_curve(self) -> np.ndarray:
        """Running best (minimum) FoM after each simulation — the series
        plotted in Figures 3 and 4."""
        return np.minimum.accumulate(self.fom) if self._fom else np.empty(0)

    def summary(self) -> dict:
        out = {
            "optimizer": self.optimizer_name,
            "problem": self.problem.name,
            "seed": self.seed,
            "n_evals": self.n_evals,
            "feasible": self.any_feasible,
            "evals_to_first_feasible": self.evals_to_first_feasible,
            "best_fom": self.best_fom if self._fom else None,
            "best_feasible_objective": self.best_feasible_objective,
            "modeling_time_s": self.modeling_time,
            "simulation_time_s": self.simulation_time,
        }
        if self.n_warm:
            out["n_warm"] = self.n_warm
        if self.engine_stats is not None:
            out["engine"] = dict(self.engine_stats)
        stats = getattr(self.problem, "scenario_stats", None)
        if callable(stats):
            # Scenario wrappers (repro.scenarios) report corner fan-out and
            # adaptive-gating counters — corners simulated vs. skipped.
            out["scenarios"] = stats()
        return out

    # -- JSON round-trip -----------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation (the :meth:`Study.save` payload).

        Float arrays are emitted as nested lists; Python's ``repr``-based
        float serialization is shortest-round-trip, so a
        :meth:`from_dict` reload reproduces every value bit-exactly.  The
        ``fom`` list is informational (consumers like
        :meth:`repro.core.WarmStart.from_checkpoint` rank donor rows by
        it without a live problem instance); :meth:`from_dict` recomputes
        it from the raw rows instead of trusting the payload.
        """
        return {
            "optimizer_name": self.optimizer_name,
            "problem_name": self.problem.name,
            "seed": int(self.seed),
            "n_evals": self.n_evals,
            "n_warm": int(self.n_warm),
            "X": [list(map(float, x)) for x in self._X],
            "F": [list(map(float, f)) for f in self._F],
            "fom": [float(v) for v in self._fom],
            "modeling_time_s": float(self.modeling_time),
            "simulation_time_s": float(self.simulation_time),
            # ``{}`` means "ran with zero counters", ``None`` means "no
            # engine info was ever attached" — a truthiness check here used
            # to collapse the former into the latter on reload.
            "engine": dict(self.engine_stats) if self.engine_stats is not None
                      else None,
        }

    @classmethod
    def from_dict(cls, problem: Any, data: dict) -> "OptimizationHistory":
        """Rebuild a history against a live ``problem`` instance.

        FoM and feasibility are *recomputed* from the stored raw rows (they
        are pure functions of ``F``), so a round-trip is bit-identical.
        """
        history = cls(problem, data["optimizer_name"], int(data["seed"]))
        if len(data["X"]) != len(data["F"]):
            raise ValueError("history X/F row counts disagree")
        for x, f in zip(data["X"], data["F"]):
            history.append(np.asarray(x, dtype=np.float64),
                           np.asarray(f, dtype=np.float64))
        history.n_warm = int(data.get("n_warm", 0))
        history.modeling_time = float(data.get("modeling_time_s", 0.0))
        history.simulation_time = float(data.get("simulation_time_s", 0.0))
        if data.get("engine") is not None:
            history.engine_stats = dict(data["engine"])
        return history


class Optimizer(ABC):
    """Ask/tell core shared by DNN-Opt and every baseline.

    Native subclasses implement :meth:`_ask` (propose the next designs) and,
    when they carry internal state beyond the history, :meth:`_observe`
    (consume one told result).  The public protocol is::

        X = optimizer.ask()          # (k, d) proposals, physical units
        F = engine.evaluate_batch(problem, X)
        optimizer.tell(X, F)         # record + update internal state

    :meth:`run` is a compatibility shim that wraps the optimizer in a
    default :class:`repro.core.Study`; production code drives a Study
    directly (pipelining, callbacks, checkpoints).

    Two guarantees native optimizers uphold:

    * **Serial equivalence** — an ``ask()``/``tell()`` round-trip of one
      proposal at a time consumes the RNG stream exactly like the historic
      blocking loop, so seeded histories are bit-identical across the API
      generations (pinned by the seed-determinism suite).
    * **Delayed feedback** — ``ask()`` may be called again before the
      previous proposals are told (the Study's pipelined mode).  Proposals
      then condition on the stale archive; an optimizer that cannot propose
      yet (e.g. DE waiting for its initial population) returns an empty
      ``(0, d)`` array, which tells the driver to gather first.

    Legacy third-party subclasses that override :meth:`_run` keep working
    through :meth:`run` (one deprecation path); :meth:`evaluate` /
    :meth:`evaluate_batch` remain for them and for direct out-of-loop
    queries, and raise :class:`BudgetExhausted` once the budget is spent.
    """

    name: str = "optimizer"

    def __init__(self, problem: Any, budget: int, seed: int = 0, *,
                 stop_when_feasible: bool = False,
                 engine: EvalEngine | None = None) -> None:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.problem = problem
        self.budget = int(budget)
        self.seed = int(seed)
        self.stop_when_feasible = bool(stop_when_feasible)
        self.engine = engine if engine is not None else EvalEngine()
        self.rng = np.random.default_rng(seed)
        self.history = OptimizationHistory(problem, self.name, seed)
        self._n_proposed = 0  # designs handed out via ask() so far

    #: public alias kept for code that referenced the old private name
    _BudgetExhausted = BudgetExhausted

    # -- ask/tell protocol -------------------------------------------------
    def ask(self, k: int | None = None) -> np.ndarray:
        """Propose the next designs to simulate, shape ``(n, d)``.

        ``k`` is a *request*: ``None`` lets the optimizer pick its preferred
        count (its initial block, ``batch_size`` candidates, or one design);
        an integer asks for at most ``k``.  May return an empty ``(0, d)``
        array when proposals must wait for outstanding :meth:`tell` calls.
        """
        if k is not None and k < 1:
            raise ValueError("k must be >= 1")
        X = np.atleast_2d(np.asarray(self._ask(k), dtype=np.float64))
        if X.size == 0:
            return np.empty((0, self.problem.dim))
        if X.shape[1] != self.problem.dim:
            raise ValueError(f"{self.name}: ask() produced designs of dim "
                             f"{X.shape[1]}, problem has dim {self.problem.dim}")
        self._n_proposed += len(X)
        return X

    def tell(self, X: np.ndarray, F: np.ndarray) -> None:
        """Observe raw performance rows ``F`` for evaluated designs ``X``.

        Designs are canonicalized through ``problem.space.canonical`` (the
        sizing that was actually simulated, signed zeros normalized to match
        the engine's cache keys) before being recorded; each row is appended
        to the history and handed to :meth:`_observe` in order, so stateful
        optimizers see results exactly as the serial protocol would.
        """
        X = self.problem.space.canonical(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        F = np.atleast_2d(np.asarray(F, dtype=np.float64))
        if len(X) != len(F):
            raise ValueError(f"tell() got {len(X)} designs but {len(F)} rows")
        for x, f_raw in zip(X, F):
            self.history.append(x, f_raw)
            self._observe(x, f_raw)
        observe = getattr(self.problem, "scenario_observe", None)
        if observe is not None:
            # Scenario wrappers derive their adaptive-gating state from
            # *told* rows only, so it rebuilds identically wherever tell is
            # driven from — the run loop, a warm-start transfer, or a
            # checkpoint resume replaying the recorded prefix.
            observe(X, F)

    def _ask(self, k: int | None) -> np.ndarray:
        raise NotImplementedError(
            f"{type(self).__name__} implements neither _ask() (native "
            f"ask/tell) nor _run() (legacy blocking loop)")

    def _observe(self, x: np.ndarray, f_raw: np.ndarray) -> None:
        """Consume one told result (row already appended to the history)."""

    # -- legacy evaluation entry points ------------------------------------
    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Simulate one design, record it, and return the raw performance row.

        Out-of-loop entry point (legacy ``_run`` bodies and direct calls);
        raises :class:`BudgetExhausted` once the budget is spent.
        """
        return self.evaluate_batch(np.asarray(x, dtype=np.float64).ravel()[None, :])[0]

    def evaluate_batch(self, X: np.ndarray) -> np.ndarray:
        """Simulate a batch of designs in one engine dispatch, in order.

        The batch is truncated to the remaining budget before any simulation
        happens, so batched optimizers never overshoot.  With
        ``stop_when_feasible``, rows after the first feasible design in the
        batch are discarded — exactly what the serial one-query-at-a-time
        protocol would have recorded.
        """
        remaining = self.budget - self.history.n_evals
        if remaining <= 0:
            raise BudgetExhausted
        X = self.problem.space.canonical(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        X = X[:remaining]
        start = time.perf_counter()
        F = self.engine.evaluate_batch(self.problem, X)
        self.history.simulation_time += time.perf_counter() - start
        stop = False
        kept = len(X)
        for i, (x, f_raw) in enumerate(zip(X, F)):
            self.history.append(x, f_raw)
            if self.stop_when_feasible and self.history.feasible[-1]:
                stop = True
                kept = i + 1
                break
        if stop:
            raise BudgetExhausted
        return F[:kept]

    def timed_modeling(self) -> "_ModelTimer":
        """Context manager adding elapsed wall-clock to modeling time."""
        return _ModelTimer(self.history)

    # -- drivers ------------------------------------------------------------
    def run(self) -> OptimizationHistory:
        """Execute the optimizer until the budget is exhausted.

        Compatibility shim: native ask/tell optimizers are wrapped in a
        default non-pipelined :class:`repro.core.Study`; subclasses that
        still override ``_run`` get the historic blocking loop (deprecated).
        """
        if type(self)._run is not Optimizer._run:
            warnings.warn(
                f"{type(self).__name__} overrides Optimizer._run(); port it "
                f"to the ask/tell protocol (_ask/_observe) — the blocking "
                f"_run loop is deprecated and cannot be pipelined, "
                f"checkpointed, or resumed.",
                DeprecationWarning, stacklevel=2)
            from .study import attach_engine_stats, engine_counter_snapshot
            before = engine_counter_snapshot(self.engine)
            try:
                self._run()
            except BudgetExhausted:
                pass
            attach_engine_stats(self.history, self.engine, before)
            return self.history
        from .study import Study
        return Study(self).run()

    def _run(self) -> None:
        """Legacy blocking loop hook — superseded by :meth:`_ask`/:meth:`_observe`."""
        raise NotImplementedError


class _ModelTimer:
    def __init__(self, history: OptimizationHistory) -> None:
        self.history = history

    def __enter__(self) -> "_ModelTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.history.modeling_time += time.perf_counter() - self._start
        return False
