"""Optimization run records shared by DNN-Opt and every baseline.

:class:`OptimizationHistory` stores each simulated design with its raw
performance row, FoM value and feasibility flag, and accounts simulator
time and model-building time separately — exactly the quantities reported
in Tables II/IV/V of the paper (success, sims-to-first-feasible, objective
statistics, modeling/simulation time).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

import numpy as np

from .engine import EvalEngine
from .fom import fom_from_raw

__all__ = ["OptimizationHistory", "Optimizer"]


class OptimizationHistory:
    """Append-only record of an optimization run."""

    def __init__(self, problem, optimizer_name: str, seed: int):
        self.problem = problem
        self.optimizer_name = optimizer_name
        self.seed = seed
        self._X: list[np.ndarray] = []
        self._F: list[np.ndarray] = []
        self._fom: list[float] = []
        self._feasible: list[bool] = []
        self.modeling_time = 0.0
        self.simulation_time = 0.0

    # -- recording ---------------------------------------------------------
    def append(self, x: np.ndarray, f_raw: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float64).ravel()
        f_raw = np.asarray(f_raw, dtype=np.float64).ravel()
        self._X.append(x)
        self._F.append(f_raw)
        self._fom.append(float(fom_from_raw(self.problem, f_raw[None, :])[0]))
        self._feasible.append(bool(self.problem.is_feasible(f_raw[None, :])[0]))

    # -- array views --------------------------------------------------------
    @property
    def X(self) -> np.ndarray:
        return np.asarray(self._X) if self._X else np.empty((0, self.problem.dim))

    @property
    def F(self) -> np.ndarray:
        cols = 1 + self.problem.num_constraints
        return np.asarray(self._F) if self._F else np.empty((0, cols))

    @property
    def fom(self) -> np.ndarray:
        return np.asarray(self._fom)

    @property
    def feasible(self) -> np.ndarray:
        return np.asarray(self._feasible, dtype=bool)

    @property
    def n_evals(self) -> int:
        return len(self._X)

    # -- summaries -----------------------------------------------------------
    @property
    def best_index(self) -> int:
        """Design with the lowest FoM (the paper's Algorithm 1 return)."""
        if not self._fom:
            raise ValueError("empty history")
        return int(np.argmin(self._fom))

    @property
    def best_x(self) -> np.ndarray:
        return self.X[self.best_index]

    @property
    def best_fom(self) -> float:
        return float(np.min(self._fom))

    @property
    def any_feasible(self) -> bool:
        return any(self._feasible)

    @property
    def evals_to_first_feasible(self) -> int | None:
        """1-based simulation count at the first feasible design (None if never)."""
        for i, ok in enumerate(self._feasible):
            if ok:
                return i + 1
        return None

    @property
    def best_feasible_index(self) -> int | None:
        """Feasible design with the lowest raw objective."""
        if not self.any_feasible:
            return None
        F = self.F
        objective = np.where(self.feasible, F[:, 0], np.inf)
        return int(np.argmin(objective))

    @property
    def best_feasible_objective(self) -> float | None:
        index = self.best_feasible_index
        return None if index is None else float(self.F[index, 0])

    def fom_curve(self) -> np.ndarray:
        """Running best (minimum) FoM after each simulation — the series
        plotted in Figures 3 and 4."""
        return np.minimum.accumulate(self.fom) if self._fom else np.empty(0)

    def summary(self) -> dict:
        return {
            "optimizer": self.optimizer_name,
            "problem": self.problem.name,
            "seed": self.seed,
            "n_evals": self.n_evals,
            "feasible": self.any_feasible,
            "evals_to_first_feasible": self.evals_to_first_feasible,
            "best_fom": self.best_fom if self._fom else None,
            "best_feasible_objective": self.best_feasible_objective,
            "modeling_time_s": self.modeling_time,
            "simulation_time_s": self.simulation_time,
        }


class Optimizer(ABC):
    """Common driver for all black-box optimizers in this package.

    Subclasses implement :meth:`_run` and call :meth:`evaluate` (or
    :meth:`evaluate_batch` for several designs at once) for every simulator
    query; the budget, history bookkeeping, timing split and optional early
    stop on feasibility are handled here.  All queries are routed through an
    :class:`~repro.core.engine.EvalEngine`, so any optimizer transparently
    gains parallel dispatch and evaluation caching when the caller passes a
    non-serial engine.
    """

    name = "optimizer"

    def __init__(self, problem, budget: int, seed: int = 0, *,
                 stop_when_feasible: bool = False,
                 engine: EvalEngine | None = None):
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.problem = problem
        self.budget = int(budget)
        self.seed = int(seed)
        self.stop_when_feasible = bool(stop_when_feasible)
        self.engine = engine if engine is not None else EvalEngine()
        self.rng = np.random.default_rng(seed)
        self.history = OptimizationHistory(problem, self.name, seed)

    class _BudgetExhausted(Exception):
        pass

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Simulate one design, record it, and return the raw performance row."""
        return self.evaluate_batch(np.asarray(x, dtype=np.float64).ravel()[None, :])[0]

    def evaluate_batch(self, X: np.ndarray) -> np.ndarray:
        """Simulate a batch of designs in one engine dispatch, in order.

        The batch is truncated to the remaining budget before any simulation
        happens, so batched optimizers never overshoot.  With
        ``stop_when_feasible``, rows after the first feasible design in the
        batch are discarded — exactly what the serial one-query-at-a-time
        protocol would have recorded.
        """
        remaining = self.budget - self.history.n_evals
        if remaining <= 0:
            raise Optimizer._BudgetExhausted
        X = self.problem.space.round(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        X = X[:remaining]
        start = time.perf_counter()
        F = self.engine.evaluate_batch(self.problem, X)
        self.history.simulation_time += time.perf_counter() - start
        stop = False
        kept = len(X)
        for i, (x, f_raw) in enumerate(zip(X, F)):
            self.history.append(x, f_raw)
            if self.stop_when_feasible and self.history.feasible[-1]:
                stop = True
                kept = i + 1
                break
        if stop:
            raise Optimizer._BudgetExhausted
        return F[:kept]

    def timed_modeling(self):
        """Context manager adding elapsed wall-clock to modeling time."""
        return _ModelTimer(self.history)

    def run(self) -> OptimizationHistory:
        """Execute the optimizer until the budget is exhausted."""
        try:
            self._run()
        except Optimizer._BudgetExhausted:
            pass
        return self.history

    @abstractmethod
    def _run(self) -> None:
        ...


class _ModelTimer:
    def __init__(self, history: OptimizationHistory):
        self.history = history

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.history.modeling_time += time.perf_counter() - self._start
        return False
