"""Actor network — proposes design changes, trained through the critic (Eq. 5-6).

The actor ``mu(x) -> dx`` is an MLP with a tanh output scaled by the span of
the elite-restricted search region, so a saturated output can move a design
across the whole region but never (by construction) far beyond it.  Training
minimizes the FoM of the critic's prediction at the displaced design plus a
large quadratic penalty on leaving the restricted region:

    L = mean_k g[Q(x_k, mu(x_k))] + || lambda * viol_k ||^2        (Eq. 5)
    viol = max(0, lb - (x + dx)) + max(0, (x + dx) - ub)           (Eq. 6)

Critic weights are frozen during actor training; gradients flow through the
critic's *inputs* into the actor parameters, exactly as in DDPG.
"""

from __future__ import annotations

import numpy as np

from ..nn import MLP, Adam, Tensor, concatenate, maximum
from .critic import Critic
from .fom import fom_tensor

__all__ = ["Actor"]


class Actor:
    """Trainable proposal network ``mu(x) -> dx`` over normalized designs."""

    def __init__(self, dim: int, *, hidden: tuple[int, ...] = (64, 64), lr: float = 1e-3,
                 epochs: int = 30, jitter_copies: int = 4,
                 rng: np.random.Generator):
        self.dim = int(dim)
        self.rng = rng
        self.net = MLP(self.dim, self.dim, hidden, activation="relu",
                       output_activation="tanh", rng=rng)
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.jitter_copies = int(jitter_copies)
        self.step_scale = np.ones(self.dim)

    def fit(self, critic: Critic, anchors: np.ndarray, lb_rest: np.ndarray,
            ub_rest: np.ndarray, *, w0: float, weights: np.ndarray,
            lam: float = 100.0) -> float:
        """Train against the frozen ``critic``; returns the final loss value.

        ``anchors`` are the elite designs (normalized coordinates); the
        training batch augments them with jittered copies inside the
        restricted region so the actor generalizes over the whole region
        rather than memorizing ``n_elite`` points.
        """
        anchors = np.atleast_2d(anchors)
        lb_rest = np.asarray(lb_rest, dtype=np.float64)
        ub_rest = np.asarray(ub_rest, dtype=np.float64)
        span = ub_rest - lb_rest
        self.step_scale = np.maximum(span, 1e-6)

        batch = [anchors]
        for _ in range(self.jitter_copies):
            jitter = self.rng.normal(0.0, 0.15, size=anchors.shape) * span
            batch.append(np.clip(anchors + jitter, 0.0, 1.0))
        x_train = np.vstack(batch)

        critic_params = critic.net.parameters()
        frozen = [p.requires_grad for p in critic_params]
        for p in critic_params:
            p.requires_grad = False
        try:
            optimizer = Adam(self.net.parameters(), lr=self.lr)
            x_const = Tensor(x_train)
            lb_t = Tensor(lb_rest.reshape(1, -1))
            ub_t = Tensor(ub_rest.reshape(1, -1))
            last = np.inf
            for _ in range(self.epochs):
                dx = self.net(x_const) * self.step_scale
                prediction = critic.forward_tensor(concatenate([x_const, dx], axis=1))
                g = fom_tensor(prediction, w0, weights)
                moved = x_const + dx
                viol = maximum(lb_t - moved, 0.0) + maximum(moved - ub_t, 0.0)
                penalty = ((viol * lam) ** 2).sum(axis=1)
                loss = (g + penalty).mean()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                last = loss.item()
        finally:
            for p, flag in zip(critic_params, frozen):
                p.requires_grad = flag
        return float(last)

    def propose(self, x: np.ndarray) -> np.ndarray:
        """Proposed displacement ``dx`` for each design row of ``x``."""
        out = self.net.predict(np.atleast_2d(x))
        return out * self.step_scale
