"""Persistent, multi-process evaluation cache: append-only shards + index.

:class:`DiskCache` is the on-disk tier behind ``EvalEngine(cache_dir=...)``.
Design goals, in order:

* **zero simulations for repeated designs across processes** — a sweep
  rerun tomorrow (or in a second worker process) answers every duplicate
  design from disk;
* **crash safety without locking** — every *writer* appends to its own
  shard file (one per cache instance, named by pid + random suffix), so
  concurrent processes never contend on a write path; a record is a
  CRC-framed blob, and a torn tail (crash or an in-progress append seen by
  a concurrent reader) is simply not indexed yet — the reader retries from
  the same offset on the next refresh;
* **cheap sharing** — readers keep a per-shard byte offset and only scan
  the appended suffix (throttled to at most one directory rescan per
  ``refresh_interval`` seconds), so a long-lived coordinator engine sees
  entries written by sibling processes mid-run without rescanning history.

Records are keyed by the engine's content key — a blake2b digest of the
*canonical* design bytes (``DesignSpace.canonical``: rounded, signed zeros
normalized) mixed with the problem's content fingerprint — so two processes
constructing the same problem agree on every key, and a rounded vs.
unrounded view of one integer design can never split into two entries.

The store is append-only: entries are immutable (a key's row is the
deterministic simulator answer for its design) and never evicted.  To
reclaim space, either delete the directory or merge the accumulated
per-process shards into one deduplicated shard::

    python -m repro.core.diskcache --compact [DIR]

(``DIR`` defaults to ``REPRO_CACHE_DIR``; run compaction offline — appends
racing the shard swap would be lost).  Without ``--compact`` the CLI prints
the store's stats as JSON.

Record wire format (one per evaluated design)::

    header  := "<16s I I"   # key digest, payload byte length, CRC32(payload)
    payload := float64 row bytes

Written as a single ``write`` + ``flush`` so readers observe prefixes of
whole records in practice; the CRC rejects anything else.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib

import numpy as np

__all__ = ["DiskCache", "compact", "main"]

_HEADER = struct.Struct("<16sII")

#: sanity bound on one record's payload — a larger length means a corrupt
#: shard (a performance row is a handful of float64s), not a real record.
MAX_ROW_BYTES = 1 << 20


class DiskCache:
    """Append-only on-disk key/row store shared between processes.

    Parameters
    ----------
    directory:
        Shard directory; created if missing.  Every cache instance writes
        to its own shard file inside it and reads everyone's.
    refresh_interval:
        Minimum seconds between directory rescans on a miss (``0`` rescans
        on every miss — useful in tests).
    """

    def __init__(self, directory: str | os.PathLike, *,
                 refresh_interval: float = 1.0):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.refresh_interval = float(refresh_interval)
        self._index: dict[bytes, np.ndarray] = {}          # guarded by: _lock
        self._offsets: dict[str, int] = {}  # shard path -> bytes consumed; guarded by: _lock
        self._writer = None                 # lazily-opened own shard handle; guarded by: _lock
        self._writer_path: str | None = None                # guarded by: _lock
        self._last_refresh = -float("inf")                  # guarded by: _lock
        self._closed = False                                # guarded by: _lock
        self._lock = threading.Lock()
        self.n_hits = 0                                     # guarded by: _lock
        self.n_misses = 0                                   # guarded by: _lock
        self.n_corrupt = 0  # records skipped for a bad CRC/length; guarded by: _lock
        with self._lock:
            self._refresh_locked(force=True)

    # -- lookup ------------------------------------------------------------
    def get(self, key: bytes) -> np.ndarray | None:
        """Row for ``key`` or ``None``; rescans shards (throttled) on a miss."""
        with self._lock:
            row = self._index.get(key)
            if row is None:
                # Another process may have appended it since the last scan.
                self._refresh_locked()
                row = self._index.get(key)
            if row is None:
                self.n_misses += 1
                return None
            self.n_hits += 1
            return row

    def __contains__(self, key: bytes) -> bool:
        with self._lock:
            return key in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    # -- writes ------------------------------------------------------------
    def put(self, key: bytes, row: np.ndarray) -> bool:
        """Persist one row; returns False when the key is already stored.

        After :meth:`close` this is a safe no-op (returns False) — straggler
        threads completing an in-flight evaluation during engine teardown
        must not crash on the closed writer handle.
        """
        row = np.ascontiguousarray(np.asarray(row, dtype=np.float64).ravel())
        with self._lock:
            if self._closed or key in self._index:
                return False
            payload = row.tobytes()
            record = _HEADER.pack(key, len(payload),
                                  zlib.crc32(payload)) + payload
            writer = self._writer_locked()
            writer.write(record)
            writer.flush()
            self._index[key] = row
            # Our own appends are indexed here; skip them when rescanning.
            self._offsets[self._writer_path] = (
                self._offsets.get(self._writer_path, 0) + len(record))
            return True

    def _writer_locked(self):  # holds: _lock
        if self._writer is None:
            name = f"shard-{os.getpid():d}-{os.urandom(4).hex()}.bin"
            self._writer_path = os.path.join(self.directory, name)
            self._writer = open(self._writer_path, "ab")
            self._offsets.setdefault(self._writer_path, 0)
        return self._writer

    # -- shard scanning ----------------------------------------------------
    def refresh(self) -> None:
        """Index rows appended by other processes since the last scan."""
        with self._lock:
            self._refresh_locked(force=True)

    def _refresh_locked(self, force: bool = False) -> None:  # holds: _lock
        now = time.monotonic()
        if not force and now - self._last_refresh < self.refresh_interval:
            return
        self._last_refresh = now
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return
        for name in names:
            if not (name.startswith("shard-") and name.endswith(".bin")):
                continue
            path = os.path.join(self.directory, name)
            self._scan_shard_locked(path)

    def _scan_shard_locked(self, path: str) -> None:  # holds: _lock
        offset = self._offsets.get(path, 0)
        try:
            size = os.path.getsize(path)
        except OSError:
            return
        if size <= offset:
            return
        try:
            with open(path, "rb") as fh:
                fh.seek(offset)
                data = fh.read(size - offset)
        except OSError:
            return
        consumed = 0
        while len(data) - consumed >= _HEADER.size:
            key, length, crc = _HEADER.unpack_from(data, consumed)
            start = consumed + _HEADER.size
            end = start + length
            if length <= MAX_ROW_BYTES and length % 8 == 0 and end > len(data):
                break  # torn tail / in-progress append: retry next refresh
            framed_ok = (length <= MAX_ROW_BYTES and length % 8 == 0
                         and zlib.crc32(data[start:end]) == crc)
            if not framed_ok:
                if end >= len(data):
                    # The bad bytes run to the end of what we can see.  A
                    # reader racing a non-atomic append observes exactly
                    # this (full header, short/garbled payload), so it is
                    # NOT corruption yet: leave the offset before the
                    # record and re-examine on the next refresh — once the
                    # writer's append completes, the same bytes pass the
                    # CRC.  (A genuinely damaged tail just keeps being
                    # re-checked, which only costs a suffix re-read.)
                    break
                # Bad bytes *followed by more data*: the append completed
                # long ago and the record is still bad -> real corruption.
                # Stop indexing the shard and never advance past the
                # damage, so it stays visible in n_corrupt.
                self.n_corrupt += 1
                self._offsets[path] = size
                return
            self._index.setdefault(
                key, np.frombuffer(data[start:end], dtype=np.float64))
            consumed = end
        self._offsets[path] = offset + consumed

    # -- lifecycle ---------------------------------------------------------
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"entries": len(self._index), "hits": self.n_hits,
                    "misses": self.n_misses, "corrupt": self.n_corrupt}

    def close(self) -> None:
        """Close the writer handle; later :meth:`put` calls become no-ops
        (and :meth:`get` keeps answering from the in-memory index)."""
        with self._lock:
            self._closed = True
            if self._writer is not None:
                try:
                    self._writer.close()
                except OSError:
                    pass
                self._writer = None

    def __enter__(self) -> "DiskCache":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        with self._lock:
            return (f"DiskCache({self.directory!r}, "
                    f"entries={len(self._index)}, hits={self.n_hits})")


# ----------------------------------------------------------------------
# offline maintenance: python -m repro.core.diskcache
# ----------------------------------------------------------------------
def compact(directory: str | os.PathLike) -> dict:
    """Merge every shard into one deduplicated shard file.

    Long-running fleets accumulate one shard per worker process per
    restart; compaction rewrites the surviving entries (first-writer-wins,
    matching the reader's ``setdefault`` semantics) into a single shard and
    deletes the old files — dropping duplicate records, torn tails and
    corrupt suffixes on the way.  **Offline operation**: appends racing the
    shard swap are lost, so run it with no live writers.

    Returns a report dict (shards/bytes before and after, entries kept,
    corrupt records dropped).
    """
    directory = os.fspath(directory)
    cache = DiskCache(directory, refresh_interval=0.0)
    try:
        with cache._lock:
            entries = dict(cache._index)
            n_corrupt = cache.n_corrupt
    finally:
        cache.close()
    old = [name for name in sorted(os.listdir(directory))
           if name.startswith("shard-") and name.endswith(".bin")]
    bytes_before = 0
    for name in old:
        try:
            bytes_before += os.path.getsize(os.path.join(directory, name))
        except OSError:
            pass
    tmp_path = os.path.join(directory,
                            f"compact-{os.getpid()}-{os.urandom(4).hex()}.tmp")
    with open(tmp_path, "wb") as fh:
        for key, row in entries.items():
            payload = row.tobytes()
            fh.write(_HEADER.pack(key, len(payload),
                                  zlib.crc32(payload)) + payload)
        fh.flush()
        os.fsync(fh.fileno())
    final_path = os.path.join(
        directory, f"shard-0-compacted-{os.urandom(4).hex()}.bin")
    os.replace(tmp_path, final_path)
    for name in old:
        try:
            os.unlink(os.path.join(directory, name))
        except OSError:
            pass
    return {"directory": directory, "entries": len(entries),
            "shards_before": len(old), "shards_after": 1,
            "bytes_before": bytes_before,
            "bytes_after": os.path.getsize(final_path),
            "corrupt_dropped": n_corrupt}


def main(argv=None) -> None:
    import argparse
    import json
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.diskcache",
        description="Inspect or compact a persistent evaluation cache "
                    "directory (the EvalEngine cache_dir disk tier).")
    parser.add_argument("directory", nargs="?",
                        default=os.environ.get("REPRO_CACHE_DIR"),
                        help="cache directory (default: REPRO_CACHE_DIR)")
    parser.add_argument("--compact", action="store_true",
                        help="merge all shards into one deduplicated shard "
                             "(offline: stop writers first)")
    args = parser.parse_args(argv)
    if not args.directory:
        parser.error("no directory given and REPRO_CACHE_DIR is not set")
    if args.compact:
        print(json.dumps(compact(args.directory)))
        return
    cache = DiskCache(args.directory, refresh_interval=0.0)
    try:
        report = cache.stats()
        report["directory"] = cache.directory
    finally:
        cache.close()
    print(json.dumps(report))


if __name__ == "__main__":
    main()
