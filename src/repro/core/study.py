"""`Study` — the driver that owns an optimization run.

The ask/tell inversion (PR 4) moves everything that is *not* proposal
generation out of the optimizers and into one place:

* **budget** — proposals are truncated to the remaining budget before any
  simulation happens, so no optimizer can overshoot;
* **dispatch** — every batch goes through the optimizer's
  :class:`~repro.core.engine.EvalEngine`; with ``pipeline_depth >= 2`` the
  study submits the next ``ask`` batch via the engine's non-blocking
  :meth:`~repro.core.engine.EvalEngine.submit` /
  :meth:`~repro.core.engine.EvalEngine.gather` pair while the previous
  batch is still in flight, overlapping actor/critic retraining (or GP
  fits) with simulator latency on the async/remote backends;
* **stop conditions** — ``stop_when_feasible`` truncation (bit-compatible
  with the historic serial protocol: rows after the first feasible design
  are discarded), a user ``stop_when(history)`` predicate, and cooperative
  :meth:`request_stop`;
* **callbacks** — each ``callback(study)`` fires after every told batch;
* **checkpoint/resume** — :meth:`save` writes a plain-JSON snapshot
  (a :meth:`~repro.core.history.OptimizationHistory.to_dict` payload plus
  run metadata and the design-space description); :meth:`load` arms a
  fresh, identically-constructed optimizer with a *replay store*, so the
  resumed run re-derives its internal state (RNG stream included) by
  re-asking and answering the recorded prefix from the store instead of
  the simulator, then continues with real evaluations — histories are
  bit-identical to an uninterrupted run on a deterministic problem;
* **warm start** — ``Study(optimizer, warm_start=WarmStart.from_checkpoint(
  path))`` transfers a donor run's archive in before the first ask (see
  :mod:`repro.core.warmstart`): told for free on the same problem, mapped
  into starting designs across problems.

Determinism contract: with ``pipeline_depth=1`` a study drives each
optimizer exactly like the historic blocking loop (same RNG consumption,
same evaluation order), which is what keeps the seed-determinism and
engine-equivalence suites green across the API redesign.  With
``pipeline_depth >= d`` proposals may condition on an archive that is up to
``d-1`` batches stale (the standard delayed-feedback setting); recorded
histories still replay to the same evaluations — every row is the
deterministic simulator answer for its design.
"""

from __future__ import annotations

import json
import os
from collections import deque
from time import perf_counter
from typing import Callable

import numpy as np

from .engine import EvalEngine
from .history import BudgetExhausted

__all__ = ["Study", "engine_counter_snapshot", "attach_engine_stats"]

#: engine counters surfaced per run in ``OptimizationHistory.summary()``
_ENGINE_COUNTERS = ("n_cache_hits", "n_disk_hits", "n_sim_calls", "n_dedup",
                    "n_pool_builds", "worker_sim_calls")

CHECKPOINT_FORMAT = 1


def engine_counter_snapshot(engine) -> dict[str, int]:
    """Current cache/dedup counter values of an engine (0 for absent ones).

    Real engines are read through :meth:`EvalEngine.counters_snapshot`, so
    every counter comes from the same instant under the engine's state
    lock; duck-typed stand-ins without that method fall back to plain
    attribute reads.
    """
    snapshot = getattr(engine, "counters_snapshot", None)
    if callable(snapshot):
        values = snapshot()
        return {name: int(values.get(name, 0)) for name in _ENGINE_COUNTERS}
    return {name: int(getattr(engine, name, 0)) for name in _ENGINE_COUNTERS}


def attach_engine_stats(history, engine, before: dict[str, int]) -> None:
    """Record this run's engine counter deltas on the history.

    ``cache_hits + dedups`` answered designs without a simulation;
    ``hit_rate`` is the fraction of requested designs that never reached the
    simulator — the per-trial number study reports surface on every backend.
    """
    after = engine_counter_snapshot(engine)
    delta = {name: after[name] - before[name] for name in _ENGINE_COUNTERS}
    requested = delta["n_cache_hits"] + delta["n_dedup"] + delta["n_sim_calls"]
    history.engine_stats = {
        "backend": getattr(engine, "backend", "?"),
        "cache_hits": delta["n_cache_hits"],
        "disk_hits": delta["n_disk_hits"],
        "misses": delta["n_sim_calls"],
        "dedups": delta["n_dedup"],
        "n_pool_builds": delta["n_pool_builds"],
        "worker_sim_calls": delta["worker_sim_calls"],
        "hit_rate": (round((delta["n_cache_hits"] + delta["n_dedup"]) / requested, 4)
                     if requested else 0.0),
    }


class Study:
    """Owns one optimization run over an ask/tell optimizer.

    Parameters
    ----------
    optimizer:
        A native ask/tell :class:`~repro.core.history.Optimizer` (budget,
        seed and ``stop_when_feasible`` are read from it).
    engine:
        Optional :class:`~repro.core.engine.EvalEngine`; when given it
        replaces ``optimizer.engine`` for this run.  The study never closes
        the engine — the caller owns its lifecycle.
    pipeline_depth:
        Maximum number of batches in flight.  ``1`` (default) is the
        barrier mode: ask, evaluate, tell, repeat — bit-identical to the
        historic blocking loop.  ``d >= 2`` submits up to ``d`` batches
        non-blockingly, so proposal generation overlaps in-flight
        evaluations (worth real wall-clock on the async/remote backends;
        pipelined proposals condition on an archive up to ``d-1`` batches
        stale).
    ask_size:
        Request size passed to every :meth:`Optimizer.ask` call.  ``None``
        (default) lets the optimizer pick its preferred count — the
        historic protocol.  An integer batches optimizers whose native
        preference is one query per iteration (e.g. random search on a
        parallel backend); optimizers may still return fewer.
    callbacks:
        Iterable of ``callback(study)`` callables fired after every told
        batch (progress printing, checkpointing, external stop requests).
    stop_when:
        Optional ``predicate(history) -> bool`` checked after every batch.
    checkpoint_path / checkpoint_every:
        When both are set, :meth:`save` runs automatically every
        ``checkpoint_every`` batches.
    auto_checkpoint / every:
        Crash-resumable shorthand: ``Study(opt, auto_checkpoint=path,
        every=n)`` checkpoints every ``n`` told batches (default 1, i.e.
        every batch) *and* writes a final snapshot on the way out of
        :meth:`run` — normal return or crash — so a long run interrupted by
        a fleet outage resumes from its last told batch via :meth:`load`
        with nothing extra wired up.  Mutually exclusive with
        ``checkpoint_path``.
    warm_start:
        Optional :class:`~repro.core.warmstart.WarmStart` — a donor run's
        archive to transfer in before the first ask.  Same-problem donors
        are *told* as a cost-free warm prefix (and seed the engine cache);
        cross-problem donors contribute mapped starting designs that the
        study simulates as its first batch.  Applied here (at construction)
        so the warm history is inspectable before :meth:`run`.  Warm rows
        never trigger ``stop_when_feasible`` — the run looks for its own
        feasible design.
    """

    def __init__(self, optimizer, *, engine: EvalEngine | None = None,
                 pipeline_depth: int = 1,
                 ask_size: int | None = None,
                 callbacks=(),
                 stop_when: Callable | None = None,
                 checkpoint_path: str | None = None,
                 checkpoint_every: int = 0,
                 auto_checkpoint: str | os.PathLike | None = None,
                 every: int | None = None,
                 warm_start=None):
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if ask_size is not None and ask_size < 1:
            raise ValueError("ask_size must be >= 1")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self._save_on_exit = False
        if auto_checkpoint is not None:
            if checkpoint_path is not None:
                raise ValueError(
                    "pass auto_checkpoint or checkpoint_path, not both")
            if every is not None and every < 1:
                raise ValueError("every must be >= 1")
            checkpoint_path = os.fspath(auto_checkpoint)
            checkpoint_every = 1 if every is None else int(every)
            self._save_on_exit = True
        elif every is not None:
            raise ValueError("every requires auto_checkpoint")
        if engine is not None:
            optimizer.engine = engine
        self.optimizer = optimizer
        self.pipeline_depth = int(pipeline_depth)
        self.ask_size = None if ask_size is None else int(ask_size)
        self.callbacks = list(callbacks)
        self.stop_when = stop_when
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = int(checkpoint_every)
        self.n_batches = 0  # batches told so far
        self._stop_requested = False
        # Replay store armed by :meth:`load`: canonical-design-bytes -> raw
        # row, plus bookkeeping to detect an optimizer that fails to
        # re-derive the recorded proposal stream (wrong hyperparameters).
        self._replay: dict[bytes, np.ndarray] = {}
        self._replay_total = 0   # recorded rows the resume must re-propose
        self._replay_served = 0  # rows answered from the store so far
        # Warm start: donor starting designs the driver simulates before
        # the optimizer's first ask (``designs`` mode), and the applied
        # transfer report (``None`` for cold studies).
        self._seed_designs: np.ndarray | None = None
        self._n_seed_designs = 0
        self.warm_report: dict | None = None
        if warm_start is not None:
            report = warm_start.apply(optimizer)
            if report["mode"] == "designs":
                self._seed_designs = report.pop("designs")
                self._n_seed_designs = len(self._seed_designs)
            self.warm_report = report

    # -- conveniences -------------------------------------------------------
    @property
    def problem(self):
        return self.optimizer.problem

    @property
    def engine(self) -> EvalEngine:
        return self.optimizer.engine

    @property
    def history(self):
        return self.optimizer.history

    def request_stop(self) -> None:
        """Cooperatively end the run after the current batch is told."""
        self._stop_requested = True

    # -- the driver loop ----------------------------------------------------
    def run(self):
        """Drive ask → evaluate → tell until the budget (or a stop) is hit.

        Returns the optimizer's :class:`OptimizationHistory`.  In pipelined
        mode the loop keeps up to ``pipeline_depth`` batches in flight; the
        first batch always completes alone so model-based optimizers never
        have to propose from an empty archive.
        """
        opt = self.optimizer
        problem, engine, history = opt.problem, opt.engine, opt.history
        budget = opt.budget
        counters_before = engine_counter_snapshot(engine)
        inflight: deque = deque()
        proposed = history.n_evals
        stop = self._stop_requested
        try:
            if self._seed_designs is not None:
                # Warm-start (designs mode): the donor's mapped starting
                # points are the run's first batch — simulated and told
                # before the optimizer's first ask, replacing part of its
                # space-filling start with donor-informed designs.
                X0 = problem.space.canonical(self._seed_designs)[:budget - proposed]
                self._seed_designs = None
                self._n_seed_designs = len(X0)
                if len(X0):
                    proposed += len(X0)
                    inflight.append(self._launch(problem, engine, X0))
            while history.n_evals < budget and not stop:
                # Fill the pipeline.  Speculative asks (ask before the
                # previous tell) only start once something has been told.
                while (not stop and len(inflight) < self.pipeline_depth
                       and proposed < budget
                       and (not inflight or history.n_evals > 0)):
                    X = opt.ask(self.ask_size)
                    if len(X) == 0:
                        break  # optimizer is waiting on outstanding tells
                    X = problem.space.canonical(X)[:budget - proposed]
                    proposed += len(X)
                    inflight.append(self._launch(problem, engine, X))
                if not inflight:
                    raise RuntimeError(
                        f"{opt.name}: ask() returned no proposals while no "
                        f"evaluations were in flight — the optimizer is stuck")
                X, F = self._finish(engine, history, inflight.popleft())
                kept = len(X)
                if opt.stop_when_feasible:
                    feasible = problem.is_feasible(F)
                    if feasible.any():
                        # Keep exactly what the serial one-query protocol
                        # would have recorded: up to the first feasible row.
                        kept = int(np.argmax(feasible)) + 1
                        stop = True
                opt.tell(X[:kept], F[:kept])
                self.n_batches += 1
                for callback in self.callbacks:
                    callback(self)
                if (self.checkpoint_path and self.checkpoint_every
                        and self.n_batches % self.checkpoint_every == 0):
                    self.save(self.checkpoint_path)
                if self.stop_when is not None and self.stop_when(history):
                    stop = True
                if self._stop_requested:
                    stop = True
        except BudgetExhausted:
            # A hard evaluation budget outside this study's own accounting —
            # a fleet tenant quota (fleet.engine(name, quota=N)) — refused
            # the batch.  End the run gracefully with the partial history:
            # every told row is intact, and the finally block below still
            # attaches engine stats and writes the exit checkpoint.
            pass
        finally:
            # Drain (and discard) whatever is still in flight so no engine
            # worker is left running; results land in the engine cache.
            while inflight:
                try:
                    self._finish(engine, history, inflight.popleft())
                except Exception:
                    pass
            attach_engine_stats(history, engine, counters_before)
            if self._save_on_exit and self.checkpoint_path and self.n_batches:
                # Crash-resumable by default: whatever ended this run —
                # normal return, ServiceError, KeyboardInterrupt — the last
                # told batch is on disk for Study.load.  Best-effort: a
                # checkpoint failure must not mask the run's own outcome.
                try:
                    self.save(self.checkpoint_path)
                except Exception:
                    pass
        return history

    # -- dispatch -----------------------------------------------------------
    def _launch(self, problem, engine, X: np.ndarray):
        """Start evaluating a canonicalized batch; returns an in-flight record."""
        if self._replay:
            # X is already canonical (run() canonicalizes every batch), so
            # these bytes line up with the store keys built by load() — the
            # same representation the engine cache hashes.
            keys = [np.ascontiguousarray(x).tobytes() for x in X]
            if all(key in self._replay for key in keys):
                F = np.vstack([self._replay[key] for key in keys])
                self._replay_served += len(X)
                return ("done", X, F)
            if self._replay_served < self._replay_total:
                lead = 0
                while lead < len(keys) and keys[lead] in self._replay:
                    lead += 1
                if lead and self._replay_served + lead == self._replay_total:
                    # The recorded run kept only this batch's leading rows —
                    # a ``stop_when_feasible`` truncation ended it mid-batch.
                    # Serve the recorded prefix; telling it re-fires the same
                    # stop, so the dropped suffix is never missed.
                    F = np.vstack([self._replay[key] for key in keys[:lead]])
                    self._replay_served += lead
                    return ("done", X[:lead], F)
                # The fresh optimizer proposed designs the checkpoint never
                # recorded while recorded rows remain unconsumed: its
                # deterministic ask stream differs from the saved run's
                # (different hyperparameters, a code change, ...).  Failing
                # loudly beats silently re-simulating the whole budget into
                # a history unrelated to the checkpoint.
                raise ValueError(
                    f"checkpoint resume diverged after "
                    f"{self._replay_served}/{self._replay_total} recorded "
                    f"evaluations: the optimizer re-proposed designs not in "
                    f"the checkpoint — it is not configured identically to "
                    f"the saved run")
        if self.pipeline_depth == 1:
            start = perf_counter()
            F = engine.evaluate_batch(problem, X)
            self.history.simulation_time += perf_counter() - start
            return ("done", X, F)
        return ("handle", X, engine.submit(problem, X))

    def _finish(self, engine, history, record):
        """Block until an in-flight record's rows are available."""
        if record[0] == "done":
            return record[1], record[2]
        _, X, handle = record
        start = perf_counter()
        F = engine.gather(handle)
        # Pipelined accounting: only the time this thread actually *blocked*
        # on the simulator counts — overlapped in-flight time is the saving.
        history.simulation_time += perf_counter() - start
        return X, F

    # -- checkpoint / resume -------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Write a plain-JSON checkpoint of the run so far (atomic replace).

        The payload carries the design-space description (variable names,
        bounds, kinds) alongside the history, which makes a checkpoint a
        self-contained transfer donor for
        :meth:`repro.core.WarmStart.from_checkpoint` — cross-problem
        mapping needs the donor names and bounds, not just the rows.
        """
        opt = self.optimizer
        space = opt.problem.space
        data = {
            "format": CHECKPOINT_FORMAT,
            "optimizer": {
                "class": type(opt).__name__,
                "name": opt.name,
                "seed": opt.seed,
                "budget": opt.budget,
                "stop_when_feasible": opt.stop_when_feasible,
            },
            "problem": {
                "name": opt.problem.name,
                "dim": opt.problem.dim,
                "fingerprint": _problem_fingerprint(opt.problem),
                "space": {
                    "names": list(space.names),
                    "lower": [float(v) for v in space.lower],
                    "upper": [float(v) for v in space.upper],
                    "kinds": [v.kind for v in space.variables],
                },
            },
            "study": {"pipeline_depth": self.pipeline_depth,
                      "ask_size": self.ask_size,
                      "n_batches": self.n_batches,
                      "n_seed_designs": self._n_seed_designs},
            "history": opt.history.to_dict(),
        }
        path = os.fspath(path)
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(data, fh)
            fh.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str | os.PathLike, optimizer, *,
             engine: EvalEngine | None = None, **study_kwargs) -> "Study":
        """Arm a fresh optimizer with a saved run's replay store.

        ``optimizer`` must be constructed exactly as the saved run's was
        (same class, seed, budget, problem content *and hyperparameters*) —
        the checkpoint carries no code, only data, and resuming re-derives
        the internal state by re-asking the deterministic proposal sequence
        while answering the recorded prefix from the store.  Identity
        metadata is validated here; a hyperparameter mismatch (which this
        method cannot see) is caught by :meth:`run`, which raises as soon
        as the re-derived proposal stream stops matching the recorded one.
        Call :meth:`Study.run` on the result to finish the run; the final
        history is bit-identical to an uninterrupted one.

        A checkpoint of a *warm-started* study resumes without a
        ``warm_start`` argument: the recorded warm prefix (and any donor
        seed-design batch) is re-applied straight from the payload.
        """
        if "warm_start" in study_kwargs:
            raise ValueError(
                "do not pass warm_start to Study.load: the checkpoint "
                "already carries the applied warm-start prefix")
        with open(os.fspath(path), encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("format") != CHECKPOINT_FORMAT:
            raise ValueError(f"unsupported checkpoint format {data.get('format')!r}")
        saved = data["optimizer"]
        mismatches = [
            f"{field}: saved {saved[field]!r} != optimizer {got!r}"
            for field, got in (("class", type(optimizer).__name__),
                               ("name", optimizer.name),
                               ("seed", optimizer.seed),
                               ("budget", optimizer.budget),
                               ("stop_when_feasible", optimizer.stop_when_feasible))
            if saved[field] != got
        ]
        if data["problem"]["dim"] != optimizer.problem.dim:
            mismatches.append(f"problem dim: saved {data['problem']['dim']} != "
                              f"{optimizer.problem.dim}")
        fingerprint = _problem_fingerprint(optimizer.problem)
        if (data["problem"]["fingerprint"] and fingerprint
                and data["problem"]["fingerprint"] != fingerprint):
            mismatches.append("problem content fingerprint differs")
        if mismatches:
            raise ValueError("checkpoint does not match the optimizer: "
                             + "; ".join(mismatches))
        if optimizer.history.n_total:
            raise ValueError("resume needs a fresh (unrun) optimizer instance")
        study_kwargs.setdefault("pipeline_depth", data["study"]["pipeline_depth"])
        study_kwargs.setdefault("ask_size", data["study"].get("ask_size"))
        study = cls(optimizer, engine=engine, **study_kwargs)
        space = optimizer.problem.space
        recorded = data["history"]
        n_warm = int(recorded.get("n_warm", 0))
        if n_warm:
            # Re-apply the donor prefix exactly as the saved run had it:
            # told before the first ask, cost-free, cache-seeded.
            Xw = np.asarray(recorded["X"][:n_warm], dtype=np.float64)
            Fw = np.asarray(recorded["F"][:n_warm], dtype=np.float64)
            optimizer.tell(Xw, Fw)
            optimizer.history.n_warm = n_warm
            optimizer.engine.seed_cache(optimizer.problem, Xw, Fw)
        n_seed = int(data["study"].get("n_seed_designs", 0))
        if n_seed:
            # Donor starting designs (cross-problem warm start) were the
            # run's first fresh batch; rebuild the seed block so run()
            # re-launches it (the replay store answers the rows).
            study._seed_designs = np.asarray(
                recorded["X"][n_warm:n_warm + n_seed], dtype=np.float64)
            study._n_seed_designs = len(study._seed_designs)
        for x, f in zip(recorded["X"][n_warm:], recorded["F"][n_warm:]):
            key = np.ascontiguousarray(
                space.canonical(np.asarray(x, dtype=np.float64))).tobytes()
            study._replay.setdefault(key, np.asarray(f, dtype=np.float64))
        study._replay_total = len(recorded["X"]) - n_warm
        # The prefix's simulator cost is real and will not be re-paid (replay
        # answers it from the store), so carry it over; modeling time is NOT
        # carried — the resume re-runs the prefix's model fits for real and
        # re-accumulates it organically.
        optimizer.history.simulation_time = float(
            data["history"].get("simulation_time_s", 0.0))
        return study


def _problem_fingerprint(problem) -> str | None:
    token = EvalEngine._fingerprint(problem)
    return token.hex() if token is not None else None
