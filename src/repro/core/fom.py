"""Figure-of-Merit function g(.) — Eq. 4 of the paper.

    g[f(x)] = w0 * f0(x) + sum_i min(1, max(0, wi * fi(x)))

operating on *normalized* performance rows (objective divided by its
reference scale, constraints in the ``fi <= 0`` violation form).  The
``max`` clip equates all designs once a constraint is met; the ``min`` clip
stops one badly-violated constraint from dominating.  Both a NumPy version
(ranking, selection, curves) and an autograd version (the actor's training
loss, Eq. 5) are provided — they compute the same function.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..nn import Tensor

__all__ = ["fom_normalized", "fom_from_raw", "fom_tensor"]


def fom_normalized(Fn: np.ndarray, w0: float, weights: np.ndarray) -> np.ndarray:
    """FoM for normalized rows ``[f0n, f1n.. fmn]``; returns shape ``(n,)``."""
    Fn = np.atleast_2d(np.asarray(Fn, dtype=np.float64))
    values = w0 * Fn[:, 0]
    if Fn.shape[1] > 1:
        clipped = np.clip(np.asarray(weights) * Fn[:, 1:], 0.0, 1.0)
        values = values + clipped.sum(axis=1)
    return values


def fom_from_raw(problem: Any, F_raw: np.ndarray) -> np.ndarray:
    """FoM directly from raw performance rows of ``problem``."""
    Fn = np.atleast_2d(problem.normalize(F_raw))
    return fom_normalized(Fn, problem.objective.weight, problem.constraint_weights())


def fom_tensor(prediction: Tensor, w0: float, weights: np.ndarray) -> Tensor:
    """Differentiable FoM of critic predictions, shape ``(n, m+1) -> (n,)``.

    Gradients flow through the objective term everywhere and through each
    constraint term only while ``0 < wi fi < 1`` (the clip's subgradient),
    matching the behaviour implied by Eq. 5.
    """
    objective = prediction[:, 0:1] * w0
    if prediction.shape[1] > 1:
        weights_row = np.asarray(weights, dtype=np.float64).reshape(1, -1)
        clipped = (prediction[:, 1:] * weights_row).clip(0.0, 1.0)
        return (objective + clipped.sum(axis=1, keepdims=True)).sum(axis=1)
    return objective.sum(axis=1)
