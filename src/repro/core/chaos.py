"""Deterministic fault injection for the evaluation service and fleet.

The failure-hardening layer (chunk deadlines, bounded failover, hedged
re-dispatch, backoff quarantine, degraded-local fallback) is only worth
trusting if every recovery path is *provoked on demand* and pinned by
tests.  This module provides that provocation as data, not hand-scripted
fakes:

* :class:`FaultSpec` — one fault: a ``kind`` (what goes wrong), an ``op``
  filter (which request frames it targets) and a trigger (``nth`` /
  ``every`` exact counters, or a seeded ``probability``).
* :class:`FaultPlan` — an ordered set of specs plus a seed.  The plan is
  consulted once per matching request frame and its decisions are
  *reproducible*: count-based triggers are exact, and the probability
  trigger draws from ``random.Random(seed)`` so the same frame sequence
  always yields the same fault sequence.
* :class:`ChaosProxy` — a frame-level TCP proxy wedged between a
  coordinator and one worker.  It speaks the service's length-prefixed
  JSON frames, forwards them both ways, and injects the plan's faults at
  the transport seam — the same seam real failures hit — so the
  coordinator under test runs *unmodified* production code.

Fault kinds
-----------

==============  ========================================================
``delay``       hold the matching reply ``delay_s`` seconds before
                forwarding (the injected-straggler model; exercises the
                hedged re-dispatch path)
``hang``        swallow the reply: the worker answered but the
                coordinator never hears it (exercises ``chunk_timeout``)
``drop``        close both sides mid-request (transport failure and
                failover requeue)
``crash``       kill the whole proxy — connections die and further
                connects are refused, like a worker process crash
``duplicate``   forward the matching reply twice (the wire layer must
                discard the second copy by request id)
``reorder``     hold the matching reply until the next reply passes, then
                release it (out-of-order completion on one connection)
``corrupt``     send a garbage frame instead of the reply (reader-thread
                death: every pending waiter must fail promptly)
==============  ========================================================

Typical wiring (see ``tests/core/test_chaos.py``)::

    plan = FaultPlan([FaultSpec("hang", op="eval", nth=2)], seed=7)
    proxy = ChaosProxy(worker.address, plan)
    fleet = FleetCoordinator(hosts=[proxy.address, other.address],
                             chunk_timeout=0.5)
    # ... run Studies; assert bit-identical history, no lost/dup sims
    proxy.close()

Determinism note: with ``nth``/``every`` triggers the injected fault
sequence is exact regardless of thread scheduling.  ``probability``
triggers are reproducible *given the same frame arrival order* — use them
for soak-style runs, counters for pinning tests.
"""

from __future__ import annotations

import logging
import random
import socket
import struct
import threading
from collections import deque

from .service import recv_msg, send_msg, parse_host

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan", "ChaosProxy"]

_log = logging.getLogger("repro.core.chaos")

FAULT_KINDS = ("delay", "hang", "drop", "crash", "duplicate", "reorder",
               "corrupt")

#: fault kinds that act on the reply path (decided at request time,
#: executed when the matching reply comes back from the worker).
_REPLY_KINDS = ("delay", "hang", "duplicate", "reorder", "corrupt")


class FaultSpec:
    """One injectable fault: kind + target op + trigger.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    op:
        Request ``op`` this spec watches (default ``"eval"``; ``"*"``
        matches every frame).  Each spec counts *its own* matching frames.
    nth:
        Fire exactly once, on the Nth matching frame (1-based).
    every:
        Fire on every Nth matching frame.
    probability:
        Fire per matching frame with this probability, drawn from the
        plan's seeded RNG.
    delay_s:
        Hold time for ``delay`` (default 0.25 s).

    Exactly one trigger (``nth``, ``every`` or ``probability``) must be
    given.
    """

    __slots__ = ("kind", "op", "nth", "every", "probability", "delay_s")

    def __init__(self, kind: str, *, op: str = "eval", nth: int | None = None,
                 every: int | None = None, probability: float = 0.0,
                 delay_s: float = 0.25):
        if kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {kind!r}")
        triggers = sum((nth is not None, every is not None, probability > 0))
        if triggers != 1:
            raise ValueError("give exactly one of nth=, every=, probability=")
        if nth is not None and nth < 1:
            raise ValueError("nth is 1-based")
        if every is not None and every < 1:
            raise ValueError("every must be >= 1")
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.kind = kind
        self.op = op
        self.nth = nth
        self.every = every
        self.probability = float(probability)
        self.delay_s = float(delay_s)

    def __repr__(self) -> str:
        trig = (f"nth={self.nth}" if self.nth is not None
                else f"every={self.every}" if self.every is not None
                else f"p={self.probability:g}")
        return f"FaultSpec({self.kind}, op={self.op!r}, {trig})"


class FaultPlan:
    """A seeded, reproducible schedule of faults (thread-safe).

    :meth:`decide` is called once per request frame the proxy sees; it
    returns the specs that fire on that frame.  Counters are per-spec, so
    two specs watching ``eval`` frames count independently.  ``fired``
    tallies executions by kind for assertions.
    """

    def __init__(self, specs, *, seed: int = 0):
        self.specs = tuple(specs)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)   # guarded by: _lock
        self._seen = [0] * len(self.specs)     # guarded by: _lock
        self._lock = threading.Lock()
        self.fired: dict[str, int] = {}        # guarded by: _lock

    def decide(self, op: str) -> list[FaultSpec]:
        """The specs firing on this frame (advances the matching counters)."""
        hits: list[FaultSpec] = []
        with self._lock:
            for i, spec in enumerate(self.specs):
                if spec.op not in ("*", op):
                    continue
                self._seen[i] += 1
                n = self._seen[i]
                if spec.nth is not None:
                    hit = n == spec.nth
                elif spec.every is not None:
                    hit = n % spec.every == 0
                else:
                    hit = self._rng.random() < spec.probability
                if hit:
                    hits.append(spec)
                    self.fired[spec.kind] = self.fired.get(spec.kind, 0) + 1
        return hits

    def __repr__(self) -> str:
        with self._lock:
            return (f"FaultPlan(seed={self.seed}, "
                    f"specs={list(self.specs)!r}, fired={self.fired})")


class _Session:
    """One client connection relayed to one upstream connection."""

    def __init__(self, proxy: "ChaosProxy", client: socket.socket):
        self.proxy = proxy
        self.client = client
        self.upstream: socket.socket | None = None
        self._lock = threading.Lock()
        # Faults decided at request time, executed on the reply path.
        # Id-carrying requests map by id; id-less (v1/hello) replies come
        # back strictly in order, so a FIFO queue lines them up.
        self._by_id: dict[int, list[FaultSpec]] = {}  # guarded by: _lock
        self._fifo: deque[list[FaultSpec]] = deque()  # guarded by: _lock
        self._held: dict | None = None  # "reorder" buffer

    def run(self) -> None:
        try:
            self.upstream = socket.create_connection(
                self.proxy.upstream_addr, timeout=10.0)
        except OSError:
            self.close()
            return
        self.proxy._track(self.upstream)
        replies = threading.Thread(target=self._pump_replies, daemon=True,
                                   name="chaos-replies")
        replies.start()
        self._pump_requests()

    # -- client -> upstream ------------------------------------------------
    def _pump_requests(self) -> None:
        try:
            while not self.proxy.stopped:
                msg = recv_msg(self.client)
                if msg is None:
                    break
                faults = self.proxy.plan.decide(msg.get("op", ""))
                kinds = [spec.kind for spec in faults]
                if "crash" in kinds:
                    _log.info("chaos: crash injected (op=%s)", msg.get("op"))
                    self.proxy.crash()
                    return
                if "drop" in kinds:
                    _log.info("chaos: drop injected (op=%s)", msg.get("op"))
                    break
                reply_faults = [spec for spec in faults
                                if spec.kind in _REPLY_KINDS]
                rid = msg.get("id")
                with self._lock:
                    if rid is not None:
                        self._by_id[int(rid)] = reply_faults
                    else:
                        self._fifo.append(reply_faults)
                send_msg(self.upstream, msg)
        except (ConnectionError, OSError, ValueError):
            pass
        finally:
            self.close()

    # -- upstream -> client ------------------------------------------------
    def _pump_replies(self) -> None:
        try:
            while not self.proxy.stopped:
                reply = recv_msg(self.upstream)
                if reply is None:
                    break
                rid = reply.get("id")
                with self._lock:
                    if rid is not None:
                        faults = self._by_id.pop(int(rid), [])
                    else:
                        faults = self._fifo.popleft() if self._fifo else []
                kinds = [spec.kind for spec in faults]
                if "hang" in kinds:
                    # The worker answered; the coordinator never hears it.
                    _log.info("chaos: hang injected (id=%s)", rid)
                    continue
                for spec in faults:
                    if spec.kind == "delay":
                        self.proxy._stop.wait(spec.delay_s)
                if "corrupt" in kinds:
                    _log.info("chaos: corrupt frame injected (id=%s)", rid)
                    self._send_garbage()
                    break
                if "reorder" in kinds:
                    self._held = reply  # release after the next reply
                    continue
                send_msg(self.client, reply)
                if "duplicate" in kinds:
                    _log.info("chaos: duplicate reply injected (id=%s)", rid)
                    send_msg(self.client, reply)
                if self._held is not None:
                    held, self._held = self._held, None
                    send_msg(self.client, held)
        except (ConnectionError, OSError, ValueError):
            pass
        finally:
            self.close()

    def _send_garbage(self) -> None:
        # A well-framed payload that is not JSON: the reader thread dies
        # decoding it, which must fail every pending waiter promptly.
        payload = b"\xff\xfe not json \x00"
        try:
            self.client.sendall(struct.pack(">I", len(payload)) + payload)
        except OSError:
            pass

    def close(self) -> None:
        for sock in (self.client, self.upstream):
            if sock is None:
                continue
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class ChaosProxy:
    """A fault-injecting TCP proxy in front of one worker.

    Point a coordinator at :attr:`address` instead of the worker's own;
    every frame is relayed through :class:`FaultPlan`-driven injection.
    ``crash()`` (also available as the ``crash`` fault kind) kills the
    proxy for good — live connections die and new connects are refused,
    exactly like a worker process crash.
    """

    def __init__(self, upstream: str, plan: FaultPlan, *,
                 host: str = "127.0.0.1", port: int = 0):
        self.upstream_addr = parse_host(upstream)
        self.plan = plan
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._socks: list[socket.socket] = []  # guarded by: _lock
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._thread = threading.Thread(target=self._accept_loop,
                                        name=f"chaos-proxy-{self.port}",
                                        daemon=True)
        self._thread.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    def _accept_loop(self) -> None:
        self._listener.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self._track(conn)
            session = _Session(self, conn)
            threading.Thread(target=session.run, daemon=True,
                             name="chaos-session").start()
        try:
            self._listener.close()
        except OSError:
            pass

    def _track(self, sock: socket.socket) -> None:
        with self._lock:
            self._socks.append(sock)

    def crash(self) -> None:
        """Die like a crashed worker: refuse new connects, kill live ones."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            socks, self._socks = self._socks, []
        for sock in socks:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    close = crash  # cleanup is the same teardown, minus the drama

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = "crashed" if self.stopped else "live"
        return (f"ChaosProxy({self.address} -> "
                f"{self.upstream_addr[0]}:{self.upstream_addr[1]}, {state})")
