"""Critic network — the simulator proxy Q(x, dx) of the paper (Eq. 3).

The critic is an MLP mapping the 2d-dimensional ``[x, dx]`` input to the
``m+1`` normalized performance predictions.  Targets are z-scored before
training (heterogeneous specs would otherwise dominate the joint MSE) and
un-scaled on prediction; the same affine un-scaling is applied inside the
autograd graph during actor training so FoM gradients are exact.
"""

from __future__ import annotations

import numpy as np

from ..nn import MLP, Adam, StandardScaler, Tensor, mse_loss

__all__ = ["Critic"]


class Critic:
    """Trainable simulator proxy ``Q(x, dx) -> [f0n, f1n, ..., fmn]``."""

    def __init__(self, dim: int, num_outputs: int, *, hidden: tuple[int, ...] = (64, 64),
                 lr: float = 1e-3, epochs: int = 20, batch_size: int = 128,
                 rng: np.random.Generator):
        self.dim = int(dim)
        self.num_outputs = int(num_outputs)
        self.rng = rng
        self.net = MLP(2 * self.dim, self.num_outputs, hidden,
                       activation="relu", rng=rng)
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.target_scaler = StandardScaler()
        self._trained = False

    def fit(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Train on pseudo-samples with the MSE of Eq. 3; returns final loss."""
        inputs = np.atleast_2d(inputs)
        targets = np.atleast_2d(targets)
        if inputs.shape[1] != 2 * self.dim:
            raise ValueError(f"critic expects {2 * self.dim} input features, "
                             f"got {inputs.shape[1]}")
        scaled = self.target_scaler.fit_transform(targets)
        optimizer = Adam(self.net.parameters(), lr=self.lr)
        n = len(inputs)
        batch = min(self.batch_size, n)
        last_loss = np.inf
        for _ in range(self.epochs):
            order = self.rng.permutation(n)
            losses = []
            for start in range(0, n, batch):
                rows = order[start:start + batch]
                prediction = self.net(Tensor(inputs[rows]))
                loss = mse_loss(prediction, Tensor(scaled[rows]))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
            last_loss = float(np.mean(losses))
        self._trained = True
        return last_loss

    def predict(self, x: np.ndarray, dx: np.ndarray) -> np.ndarray:
        """Predicted normalized performance rows for anchors + displacements."""
        self._check_trained()
        x = np.atleast_2d(x)
        dx = np.atleast_2d(dx)
        scaled = self.net.predict(np.concatenate([x, dx], axis=1))
        return self.target_scaler.inverse_transform(scaled)

    def forward_tensor(self, x_dx: Tensor) -> Tensor:
        """Differentiable forward pass returning *unscaled* predictions."""
        self._check_trained()
        scaled = self.net(x_dx)
        return scaled * self.target_scaler.scale_ + self.target_scaler.mean_

    def validation_rmse(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """RMSE on held-out pseudo-samples, in normalized-spec units."""
        self._check_trained()
        scaled_prediction = self.net.predict(np.atleast_2d(inputs))
        prediction = self.target_scaler.inverse_transform(scaled_prediction)
        return float(np.sqrt(np.mean((prediction - np.atleast_2d(targets)) ** 2)))

    def _check_trained(self) -> None:
        if not self._trained:
            raise RuntimeError("critic has not been trained")
