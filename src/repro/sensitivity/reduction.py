"""Problem reduction: optimize only the critical variables.

:class:`ReducedProblem` wraps any :class:`OptimizationProblem`, freezing
the non-critical variables at their nominal values.  Optimizers see only
the reduced design space; evaluation re-inserts the frozen values before
calling the full simulator — the paper's "workable range" recipe for
industrial circuits.
"""

from __future__ import annotations

import numpy as np

from ..problems.base import DesignSpace, OptimizationProblem

__all__ = ["ReducedProblem", "reduce_problem"]


class ReducedProblem(OptimizationProblem):
    """A view of ``base`` restricted to ``keep_names`` variables."""

    def __init__(self, base: OptimizationProblem, keep_names: list[str],
                 nominal: np.ndarray):
        if not keep_names:
            raise ValueError("must keep at least one variable")
        unknown = [n for n in keep_names if n not in base.space.names]
        if unknown:
            raise ValueError(f"unknown variables: {unknown}")
        self.base = base
        self.nominal = np.asarray(nominal, dtype=np.float64).copy()
        if self.nominal.shape != (base.space.dim,):
            raise ValueError("nominal must match the full design space")
        name_to_col = {name: i for i, name in enumerate(base.space.names)}
        self.keep_columns = np.array([name_to_col[n] for n in keep_names])
        variables = [base.space.variables[i] for i in self.keep_columns]
        super().__init__(DesignSpace(variables), base.objective, base.specs,
                         name=f"{base.name}[reduced {len(variables)}/{base.space.dim}]")

    def expand(self, x_reduced: np.ndarray) -> np.ndarray:
        """Full design vector: nominal with the kept variables overridden."""
        full = self.nominal.copy()
        full[self.keep_columns] = np.asarray(x_reduced, dtype=np.float64).ravel()
        return full

    def _evaluate(self, x: np.ndarray) -> np.ndarray:
        return self.base.evaluate(self.expand(x))


def reduce_problem(base: OptimizationProblem, sensitivity, *,
                   threshold: float = 0.05,
                   metrics: list[str] | None = None,
                   min_keep: int = 2) -> ReducedProblem:
    """Build a :class:`ReducedProblem` from a sensitivity result."""
    keep = sensitivity.critical_variables(threshold=threshold, metrics=metrics,
                                          min_keep=min_keep)
    return ReducedProblem(base, keep, sensitivity.nominal)
