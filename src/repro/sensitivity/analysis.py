"""Sensitivity analysis — Eq. 7 of the paper.

For large industrial circuits a blind search wastes simulations on
variables that do not move the failing specs.  The paper perturbs each
design variable around its nominal value, measures the impact on the
objective and every constraint,

    S_ij = d f_i / d d_j ,

and keeps only the variables whose (normalized) sensitivity exceeds a
user threshold.  This module computes the sensitivity matrix with central
finite differences in normalized coordinates (so thresholds are unitless
and comparable across variables) and ranks/filters variables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..problems.base import OptimizationProblem

__all__ = ["SensitivityResult", "sensitivity_analysis"]


@dataclass
class SensitivityResult:
    """Sensitivity matrix plus the bookkeeping to interpret it."""

    problem: OptimizationProblem
    nominal: np.ndarray
    #: |d f_i / d u_j| in normalized units, shape (m+1, d)
    matrix: np.ndarray
    #: simulator evaluations spent
    n_evaluations: int

    @property
    def variable_names(self) -> list[str]:
        return self.problem.space.names

    @property
    def metric_names(self) -> list[str]:
        return self.problem.metric_names

    def variable_scores(self, metrics: list[str] | None = None) -> np.ndarray:
        """Max |sensitivity| per variable over the selected metrics
        (default: all metrics)."""
        rows = self._metric_rows(metrics)
        return np.max(self.matrix[rows], axis=0)

    def critical_variables(self, threshold: float = 0.05,
                           metrics: list[str] | None = None,
                           min_keep: int = 1) -> list[str]:
        """Names of variables whose score exceeds ``threshold``.

        ``metrics`` restricts the analysis to failing specs, following the
        paper's recipe of targeting the constraints that need fixing.  At
        least ``min_keep`` variables (the top-scored) are always returned.
        """
        scores = self.variable_scores(metrics)
        names = self.variable_names
        keep = [name for name, score in zip(names, scores) if score > threshold]
        if len(keep) < min_keep:
            order = np.argsort(scores)[::-1]
            keep = [names[i] for i in order[:min_keep]]
        return keep

    def ranking(self, metrics: list[str] | None = None) -> list[tuple[str, float]]:
        """Variables sorted by descending score."""
        scores = self.variable_scores(metrics)
        order = np.argsort(scores)[::-1]
        return [(self.variable_names[i], float(scores[i])) for i in order]

    def _metric_rows(self, metrics: list[str] | None) -> list[int]:
        if metrics is None:
            return list(range(self.matrix.shape[0]))
        index = {name: i for i, name in enumerate(self.metric_names)}
        missing = [m for m in metrics if m not in index]
        if missing:
            raise KeyError(f"unknown metrics: {missing}")
        return [index[m] for m in metrics]

    def describe(self, top: int = 10) -> str:
        lines = [f"sensitivity ranking for {self.problem.name} "
                 f"({self.n_evaluations} simulations):"]
        for name, score in self.ranking()[:top]:
            lines.append(f"  {name:20s} {score:10.4f}")
        return "\n".join(lines)


def sensitivity_analysis(problem: OptimizationProblem,
                         nominal: np.ndarray | None = None, *,
                         step: float = 0.05,
                         rng: np.random.Generator | None = None) -> SensitivityResult:
    """Compute |d f_i / d u_j| by central differences at ``nominal``.

    ``step`` is the perturbation in *normalized* coordinates (fraction of
    each variable's range).  Metrics are normalized the same way the FoM
    sees them, so a score of 1 means "a full-range move shifts the metric
    by one constraint-scale".  Costs ``2 d + 1`` simulations.
    """
    space = problem.space
    if nominal is None:
        center = np.full(space.dim, 0.5)
        nominal = space.round(space.denormalize(center))
    nominal = np.asarray(nominal, dtype=np.float64)
    u0 = space.normalize(nominal)

    f_nominal = problem.normalize(problem.evaluate(nominal))
    num_metrics = len(f_nominal)
    matrix = np.zeros((num_metrics, space.dim))
    evaluations = 1

    for j in range(space.dim):
        h = min(step, u0[j], 1.0 - u0[j])
        if h < 1e-6:
            h = step  # nominal at a bound: fall back to a one-sided-ish probe
        u_plus = u0.copy()
        u_minus = u0.copy()
        u_plus[j] = min(u0[j] + h, 1.0)
        u_minus[j] = max(u0[j] - h, 0.0)
        span = u_plus[j] - u_minus[j]
        if span < 1e-9:
            continue
        f_plus = problem.normalize(problem.evaluate(space.denormalize(u_plus)))
        f_minus = problem.normalize(problem.evaluate(space.denormalize(u_minus)))
        evaluations += 2
        matrix[:, j] = np.abs((f_plus - f_minus) / span)

    return SensitivityResult(problem=problem, nominal=nominal, matrix=matrix,
                             n_evaluations=evaluations)
