"""Sensitivity analysis (Eq. 7) and critical-variable problem reduction."""

from .analysis import SensitivityResult, sensitivity_analysis
from .reduction import ReducedProblem, reduce_problem

__all__ = [
    "sensitivity_analysis",
    "SensitivityResult",
    "ReducedProblem",
    "reduce_problem",
]
