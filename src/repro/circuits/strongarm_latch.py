"""StrongARM latch comparator — the paper's second building block (Fig. 5).

Clocked regenerative comparator: clock-gated tail, NMOS input pair
integrating onto the X nodes, cross-coupled NMOS/PMOS latch on the output
nodes, four PMOS precharge switches, and output buffer inverters driving
the capacitive load.  All specs of Eq. 10 are measured from one transient
covering a full clock period (reset -> evaluate -> reset), except the
input-referred noise, which uses the standard StrongARM estimate

    sigma_in ~ sqrt(4 kT gamma / (gm_in * t_int))

with ``gm_in`` and the integration time ``t_int`` extracted from the same
transient (a transient-noise simulator is out of scope; the estimate
preserves the gm * t_int sizing trade-off the constraint is meant to push
on — documented in DESIGN.md/EXPERIMENTS.md).

Variable roles (Table III):

====  =====================================
pair  devices
====  =====================================
W1L1  clock tail switch
W2L2  NMOS input pair
W3L3  cross-coupled NMOS latch pair
W4L4  cross-coupled PMOS latch pair
W5L5  four PMOS precharge switches
W6L6  output buffer inverters (PMOS 2x W6)
CL    load capacitance, 1 fF per finger
====  =====================================
"""

from __future__ import annotations

import numpy as np

from ..problems.base import Objective, Spec, Variable
from ..spice import Circuit, NMOS_180, PMOS_180, Pulse, transient
from ..spice.devices.passives import BOLTZMANN, ROOM_TEMPERATURE
from ..spice.errors import AnalysisError
from ..spice.waveform import crossings
from .base import SizingCircuit

__all__ = ["StrongArmLatch"]


class StrongArmLatch(SizingCircuit):
    """StrongARM latch comparator sized per Table III / Eq. 10."""

    name = "strongarm_latch"

    def __init__(self, vdd: float = 1.2, vcm: float = 0.7, vdiff: float = 10e-3,
                 *, eval_window: float = 12e-9, reset_window: float = 12e-9,
                 clk_delay: float = 2e-9, tran_step: float = 40e-12):
        self.vdd = float(vdd)
        self.vcm = float(vcm)
        self.vdiff = float(vdiff)
        self.eval_window = float(eval_window)
        self.reset_window = float(reset_window)
        self.clk_delay = float(clk_delay)
        self.tran_step = float(tran_step)

    # ------------------------------------------------------------------
    # Problem definition (Table III + Eq. 10)
    # ------------------------------------------------------------------
    def variables(self) -> list[Variable]:
        variables = [Variable(f"L{i}", 0.18, 10.0, unit="um") for i in "123456"]
        variables += [Variable(f"W{i}", 0.22, 50.0, unit="um") for i in "123456"]
        variables.append(Variable("CL_finger", 10, 300, kind="integer"))
        return variables

    def objective(self) -> Objective:
        return Objective("power_w", scale=10e-6, weight=1.0, unit="W")

    def specs(self) -> list[Spec]:
        return [
            Spec("set_delay_s", "max", 10e-9, unit="s"),
            Spec("reset_delay_s", "max", 6.5e-9, unit="s"),
            Spec("area_um2", "max", 26.0, unit="um^2"),
            # Paper bound: 50 uVrms; re-centred to our technology models
            # (see EXPERIMENTS.md) so the constraint is binding but feasible.
            Spec("input_noise_vrms", "max", 250e-6, unit="Vrms"),
            Spec("diff_reset_v", "max", 1e-6, unit="V"),
            Spec("diff_set_v", "min", 1.195, unit="V"),
            Spec("xp_reset_v", "max", 60e-6, unit="V"),
            Spec("xn_reset_v", "max", 60e-6, unit="V"),
            Spec("outp_reset_v", "max", 0.35e-6, unit="V"),
            Spec("outn_reset_v", "max", 0.35e-6, unit="V"),
        ]

    def nominal(self) -> dict[str, float]:
        return {
            "L1": 0.18, "L2": 0.25, "L3": 0.18, "L4": 0.18, "L5": 0.18, "L6": 0.18,
            "W1": 8.0, "W2": 12.0, "W3": 4.0, "W4": 3.0, "W5": 2.0, "W6": 1.5,
            "CL_finger": 20,
        }

    # ------------------------------------------------------------------
    # Netlist
    # ------------------------------------------------------------------
    def build(self, params: dict[str, float]) -> Circuit:
        p = {k: float(v) for k, v in params.items()}
        um = 1e-6
        w = {i: p[f"W{i}"] * um for i in "123456"}
        l = {i: p[f"L{i}"] * um for i in "123456"}
        c_load = max(1, int(round(p["CL_finger"]))) * 1e-15

        period = self.clk_delay + self.eval_window + self.reset_window
        clk = Pulse(0.0, self.vdd, delay=self.clk_delay, rise=50e-12, fall=50e-12,
                    width=self.eval_window, period=period * 10)

        c = Circuit(self.name)
        c.vsource("VDD", "vdd", "0", self.vdd)
        c.vsource("VCLK", "clk", "0", clk)
        c.vsource("VIP", "vip", "0", self.vcm + 0.5 * self.vdiff)
        c.vsource("VIN", "vin", "0", self.vcm - 0.5 * self.vdiff)

        # Core: tail, input pair, cross-coupled latch.
        c.mosfet("M1", "ptail", "clk", "0", "0", NMOS_180, w["1"], l["1"])
        c.mosfet("M2", "x1", "vip", "ptail", "0", NMOS_180, w["2"], l["2"])
        c.mosfet("M3", "x2", "vin", "ptail", "0", NMOS_180, w["2"], l["2"])
        c.mosfet("M4", "q1", "q2", "x1", "0", NMOS_180, w["3"], l["3"])
        c.mosfet("M5", "q2", "q1", "x2", "0", NMOS_180, w["3"], l["3"])
        c.mosfet("M6", "q1", "q2", "vdd", "vdd", PMOS_180, w["4"], l["4"])
        c.mosfet("M7", "q2", "q1", "vdd", "vdd", PMOS_180, w["4"], l["4"])

        # Precharge switches (PMOS, on while clk is low).
        c.mosfet("S1", "q1", "clk", "vdd", "vdd", PMOS_180, w["5"], l["5"])
        c.mosfet("S2", "q2", "clk", "vdd", "vdd", PMOS_180, w["5"], l["5"])
        c.mosfet("S3", "x1", "clk", "vdd", "vdd", PMOS_180, w["5"], l["5"])
        c.mosfet("S4", "x2", "clk", "vdd", "vdd", PMOS_180, w["5"], l["5"])

        # Output buffer inverters and load.
        c.mosfet("MI1N", "von", "q1", "0", "0", NMOS_180, w["6"], l["6"])
        c.mosfet("MI1P", "von", "q1", "vdd", "vdd", PMOS_180, 2.0 * w["6"], l["6"])
        c.mosfet("MI2N", "vop", "q2", "0", "0", NMOS_180, w["6"], l["6"])
        c.mosfet("MI2P", "vop", "q2", "vdd", "vdd", PMOS_180, 2.0 * w["6"], l["6"])
        c.capacitor("CL1", "von", "0", c_load)
        c.capacitor("CL2", "vop", "0", c_load)
        return c

    # ------------------------------------------------------------------
    # Testbench
    # ------------------------------------------------------------------
    def measure(self, params: dict[str, float]) -> dict[str, float]:
        circuit = self.build(params)
        t_eval = self.clk_delay                      # clock rise
        t_reset = self.clk_delay + self.eval_window  # clock fall
        t_end = t_reset + self.reset_window
        nodeset = {"vdd": self.vdd, "q1": self.vdd, "q2": self.vdd,
                   "x1": self.vdd, "x2": self.vdd, "von": 0.0, "vop": 0.0}
        tran = transient(circuit, self.tran_step, t_end, ics=nodeset)

        t = tran.t
        diff = tran.diff("q1", "q2")
        results: dict[str, float] = {}

        # Set delay and achieved set level (vip > vin, so q2 falls, diff rises).
        set_level = 1.195
        set_cross = crossings(t, np.abs(diff), set_level, "rise")
        set_cross = set_cross[set_cross >= t_eval]
        window = self.eval_window
        if len(set_cross):
            results["set_delay_s"] = float(set_cross[0] - t_eval)
        else:
            results["set_delay_s"] = window  # degraded: never set
        eval_mask = (t >= t_eval) & (t <= t_reset)
        results["diff_set_v"] = float(np.max(np.abs(diff[eval_mask])))

        # Reset delay: |diff| back below 1 mV after the falling clock edge.
        reset_cross = crossings(t, np.abs(diff), 1e-3, "fall")
        reset_cross = reset_cross[reset_cross >= t_reset]
        if len(reset_cross):
            results["reset_delay_s"] = float(reset_cross[0] - t_reset)
        else:
            results["reset_delay_s"] = self.reset_window

        # Residual voltages at the end of the reset phase.
        results["diff_reset_v"] = float(np.abs(diff[-1]))
        results["xp_reset_v"] = float(abs(self.vdd - tran.v("x1")[-1]))
        results["xn_reset_v"] = float(abs(self.vdd - tran.v("x2")[-1]))
        results["outp_reset_v"] = float(abs(tran.v("vop")[-1]))
        results["outn_reset_v"] = float(abs(tran.v("von")[-1]))

        # Average supply power over the full period.
        i_vdd = tran.i("VDD")
        energy = -np.trapezoid(i_vdd * self.vdd, t)  # supply current is negative
        results["power_w"] = float(abs(energy) / t_end)

        # Area: transistors plus load capacitors (0.02 um^2 per fF).
        p = {k: float(v) for k, v in params.items()}
        counts = {"1": 1, "2": 2, "3": 2, "4": 2, "5": 4, "6": 3}
        area = sum(p[f"W{i}"] * p[f"L{i}"] * n for i, n in counts.items())
        area += 2 * (max(1, round(p["CL_finger"])) * 0.02)
        results["area_um2"] = float(area)

        # Input-referred noise estimate from the integration phase.
        results["input_noise_vrms"] = self._input_noise(params, tran, t_eval)
        return results

    def _input_noise(self, params: dict[str, float], tran, t_eval: float) -> float:
        """sqrt(4 kT gamma / (gm_in t_int)) with gm and t_int from the transient."""
        t = tran.t
        # Integration time: clock edge until an X node has discharged by vth.
        x1 = tran.v("x1")
        try:
            drop = crossings(t, x1, self.vdd - 0.45, "fall")
            drop = drop[drop >= t_eval]
            t_int = float(drop[0] - t_eval) if len(drop) else self.eval_window
        except AnalysisError:
            t_int = self.eval_window
        t_int = max(t_int, 5e-12)
        # Input-pair gm from the tail current at mid-integration (square law).
        i_vdd = np.abs(tran.i("VDD"))
        i_tail = float(np.interp(t_eval + 0.5 * t_int, t, i_vdd))
        p = {k: float(v) for k, v in params.items()}
        kwl = 300e-6 * (p["W2"] / p["L2"])  # NMOS kp * W/L
        gm = float(np.sqrt(max(2.0 * kwl * 0.5 * i_tail, 1e-18)))
        gamma_noise = 2.0 / 3.0
        sigma_sq = 4.0 * BOLTZMANN * ROOM_TEMPERATURE * gamma_noise / (gm * t_int)
        return float(np.sqrt(sigma_sq))
