"""Inverter chain — the paper's tool-development industrial case (Table V).

Four-stage CMOS inverter chain at an advanced node: all eight transistor
widths are design variables and the two specs are propagation delay and
average power, exactly as described in Section III-B.
"""

from __future__ import annotations

import numpy as np

from ..problems.base import Objective, Spec, Variable
from ..spice import Circuit, NMOS_7, PMOS_7, Pulse, transient
from ..spice.waveform import delay_between
from ..spice.errors import AnalysisError
from .base import SizingCircuit

__all__ = ["InverterChain"]


class InverterChain(SizingCircuit):
    """Four-stage inverter chain: 8 width variables, delay + power specs."""

    name = "inverter_chain"

    def __init__(self, vdd: float = 0.9, c_load: float = 50e-15,
                 *, period: float = 4e-9, tran_step: float = 10e-12):
        self.vdd = float(vdd)
        self.c_load = float(c_load)
        self.period = float(period)
        self.tran_step = float(tran_step)

    def variables(self) -> list[Variable]:
        variables = []
        for stage in range(1, 5):
            variables.append(Variable(f"WN{stage}", 0.1, 20.0, unit="um"))
            variables.append(Variable(f"WP{stage}", 0.1, 40.0, unit="um"))
        return variables

    def objective(self) -> Objective:
        return Objective("power_w", scale=100e-6, weight=1.0, unit="W")

    def specs(self) -> list[Spec]:
        return [
            Spec("delay_rise_s", "max", 16e-12, unit="s"),
            Spec("delay_fall_s", "max", 16e-12, unit="s"),
        ]

    def nominal(self) -> dict[str, float]:
        sizes = {}
        for stage, scale in zip(range(1, 5), (1.0, 2.0, 4.0, 8.0)):
            sizes[f"WN{stage}"] = 0.5 * scale
            sizes[f"WP{stage}"] = 1.0 * scale
        return sizes

    def build(self, params: dict[str, float]) -> Circuit:
        p = {k: float(v) for k, v in params.items()}
        um = 1e-6
        length = 0.05e-6  # minimum length at the advanced node

        c = Circuit(self.name)
        c.vsource("VDD", "vdd", "0", self.vdd)
        stimulus = Pulse(0.0, self.vdd, delay=0.5e-9, rise=20e-12, fall=20e-12,
                         width=self.period / 2, period=self.period)
        c.vsource("VIN", "n0", "0", stimulus)
        for stage in range(1, 5):
            src = f"n{stage - 1}"
            dst = f"n{stage}"
            c.mosfet(f"MN{stage}", dst, src, "0", "0", NMOS_7,
                     p[f"WN{stage}"] * um, length)
            c.mosfet(f"MP{stage}", dst, src, "vdd", "vdd", PMOS_7,
                     p[f"WP{stage}"] * um, length)
        c.capacitor("CL", "n4", "0", self.c_load)
        return c

    def measure(self, params: dict[str, float]) -> dict[str, float]:
        circuit = self.build(params)
        tran = transient(circuit, self.tran_step, 1.5 * self.period,
                         ics={"vdd": self.vdd})
        t = tran.t
        v_in = tran.v("n0")
        v_out = tran.v("n4")
        mid = self.vdd / 2
        window = self.period
        # Even number of stages: output follows the input polarity.
        try:
            rise = delay_between(t, v_in, v_out, mid, mid, "rise", "rise")
        except AnalysisError:
            rise = window
        try:
            fall = delay_between(t, v_in, v_out, mid, mid, "fall", "fall")
        except AnalysisError:
            fall = window
        i_vdd = tran.i("VDD")
        power = abs(np.trapezoid(i_vdd * self.vdd, t)) / (t[-1] - t[0])
        return {"delay_rise_s": float(rise), "delay_fall_s": float(fall),
                "power_w": float(power)}
