"""Level shifter — industrial case 2 of Table V.

Classic cross-coupled PMOS level shifter translating a low-VDD (0.9 V)
logic signal to the high-VDD (1.8 V) domain: input inverter in the low
domain, differential NMOS pull-downs, cross-coupled PMOS load, and an
output buffer in the high domain.  The paper reports 10 critical devices
(found by sensitivity analysis) and ~60 specs of delay/rise/fall/power
type; we expose the same 10 devices and the representative spec classes.
"""

from __future__ import annotations

import numpy as np

from ..problems.base import Objective, Spec, Variable
from ..spice import Circuit, NMOS_7, PMOS_7, Pulse, transient
from ..spice.errors import AnalysisError
from ..spice.waveform import crossings, delay_between
from .base import SizingCircuit

__all__ = ["LevelShifter"]


class LevelShifter(SizingCircuit):
    """10-variable cross-coupled level shifter, 0.9 V -> 1.8 V."""

    name = "level_shifter"

    def __init__(self, vddl: float = 0.9, vddh: float = 1.8,
                 *, period: float = 8e-9, tran_step: float = 20e-12,
                 c_load: float = 20e-15):
        self.vddl = float(vddl)
        self.vddh = float(vddh)
        self.period = float(period)
        self.tran_step = float(tran_step)
        self.c_load = float(c_load)

    def variables(self) -> list[Variable]:
        # The ten critical devices of the paper's sensitivity analysis.
        names = ["WN_INV", "WP_INV",      # low-domain input inverter
                 "WN_PD1", "WN_PD2",      # differential pull-downs
                 "WP_CC1", "WP_CC2",      # cross-coupled PMOS
                 "WN_BUF", "WP_BUF",      # high-domain output buffer
                 "WN_BUF2", "WP_BUF2"]    # second buffer stage
        return [Variable(name, 0.1, 30.0, unit="um") for name in names]

    def objective(self) -> Objective:
        return Objective("power_w", scale=50e-6, weight=1.0, unit="W")

    def specs(self) -> list[Spec]:
        return [
            Spec("delay_rise_s", "max", 18e-12, unit="s"),
            Spec("delay_fall_s", "max", 18e-12, unit="s"),
            Spec("rise_time_s", "max", 18e-12, unit="s"),
            Spec("fall_time_s", "max", 18e-12, unit="s"),
            Spec("static_current_a", "max", 2e-6, unit="A"),
            Spec("output_high_v", "min", 1.75, unit="V"),
            Spec("output_low_v", "max", 0.05, unit="V"),
            Spec("duty_distortion_s", "max", 150e-12, unit="s"),
        ]

    def nominal(self) -> dict[str, float]:
        return {"WN_INV": 1.0, "WP_INV": 2.0, "WN_PD1": 4.0, "WN_PD2": 4.0,
                "WP_CC1": 1.0, "WP_CC2": 1.0, "WN_BUF": 1.5, "WP_BUF": 3.0,
                "WN_BUF2": 3.0, "WP_BUF2": 6.0}

    def build(self, params: dict[str, float]) -> Circuit:
        p = {k: float(v) for k, v in params.items()}
        um = 1e-6
        length = 0.05e-6

        c = Circuit(self.name)
        c.vsource("VDDL", "vddl", "0", self.vddl)
        c.vsource("VDDH", "vddh", "0", self.vddh)
        stimulus = Pulse(0.0, self.vddl, delay=1e-9, rise=30e-12, fall=30e-12,
                         width=self.period / 2, period=self.period)
        c.vsource("VIN", "in", "0", stimulus)

        # Low-domain inverter produces the complementary phase.
        c.mosfet("MNI", "inb", "in", "0", "0", NMOS_7, p["WN_INV"] * um, length)
        c.mosfet("MPI", "inb", "in", "vddl", "vddl", PMOS_7, p["WP_INV"] * um, length)

        # Cross-coupled core in the high domain.
        c.mosfet("MN1", "lat1", "in", "0", "0", NMOS_7, p["WN_PD1"] * um, length)
        c.mosfet("MN2", "lat2", "inb", "0", "0", NMOS_7, p["WN_PD2"] * um, length)
        c.mosfet("MP1", "lat1", "lat2", "vddh", "vddh", PMOS_7, p["WP_CC1"] * um, length)
        c.mosfet("MP2", "lat2", "lat1", "vddh", "vddh", PMOS_7, p["WP_CC2"] * um, length)

        # Two-stage output buffer in the high domain (out follows `in`).
        c.mosfet("MNB", "outb", "lat2", "0", "0", NMOS_7, p["WN_BUF"] * um, length)
        c.mosfet("MPB", "outb", "lat2", "vddh", "vddh", PMOS_7, p["WP_BUF"] * um, length)
        c.mosfet("MNB2", "out", "outb", "0", "0", NMOS_7, p["WN_BUF2"] * um, length)
        c.mosfet("MPB2", "out", "outb", "vddh", "vddh", PMOS_7, p["WP_BUF2"] * um, length)
        c.capacitor("CL", "out", "0", self.c_load)
        return c

    def measure(self, params: dict[str, float]) -> dict[str, float]:
        circuit = self.build(params)
        tran = transient(circuit, self.tran_step, 1.6 * self.period,
                         ics={"vddl": self.vddl, "vddh": self.vddh,
                              "lat1": self.vddh, "out": 0.0})
        t = tran.t
        v_in = tran.v("in")
        v_out = tran.v("out")
        mid_l = self.vddl / 2
        mid_h = self.vddh / 2
        window = self.period

        # Output logic levels in the settled portions of each phase (computed
        # first: a stuck mid-rail output must not measure as "zero delay").
        high_mask = (t > 1e-9 + 0.35 * self.period) & (t < 1e-9 + 0.5 * self.period)
        low_mask = (t > 1e-9 + 0.85 * self.period) & (t < 1e-9 + self.period)
        output_high = float(np.min(v_out[high_mask])) if high_mask.any() else 0.0
        output_low = float(np.max(v_out[low_mask])) if low_mask.any() else self.vddh
        swings = output_high > 0.9 * self.vddh and output_low < 0.1 * self.vddh

        def safe_delay(edge_in, edge_out):
            if not swings:
                return window
            try:
                # 60 ps slack: a strong shifter beats the 30 ps input ramp's
                # mid-point, which makes the true delay slightly negative.
                return delay_between(t, v_in, v_out, mid_l, mid_h, edge_in,
                                     edge_out, slack=60e-12)
            except AnalysisError:
                return window

        delay_rise = safe_delay("rise", "rise")
        delay_fall = safe_delay("fall", "fall")

        def edge_time(level_lo, level_hi, direction):
            if not swings:
                return window
            lo = crossings(t, v_out, level_lo, direction)
            hi = crossings(t, v_out, level_hi, direction)
            if len(lo) and len(hi):
                return abs(float(hi[0] - lo[0]))
            return window

        rise_time = edge_time(0.1 * self.vddh, 0.9 * self.vddh, "rise")
        fall_time = edge_time(0.9 * self.vddh, 0.1 * self.vddh, "fall")

        # Static current in the settled half-periods (high-domain supply).
        i_vddh = np.abs(tran.i("VDDH"))
        settled = t > (t[-1] - 0.2 * self.period)
        static_current = float(np.min(i_vddh[settled])) if settled.any() else float("inf")

        power = abs(np.trapezoid(tran.i("VDDH") * self.vddh, t)
                    + np.trapezoid(tran.i("VDDL") * self.vddl, t)) / (t[-1] - t[0])

        return {
            "power_w": float(power),
            "delay_rise_s": float(delay_rise),
            "delay_fall_s": float(delay_fall),
            "rise_time_s": float(rise_time),
            "fall_time_s": float(fall_time),
            "static_current_a": static_current,
            "output_high_v": output_high,
            "output_low_v": output_low,
            "duty_distortion_s": float(abs(delay_rise - delay_fall)),
        }
