"""Low-dropout regulator — industrial case 3 of Table V.

Five-transistor error amplifier driving a PMOS pass device with a
resistive feedback divider, output capacitor and DC load.  The paper's LDO
has 167k devices (arrayed instances) reduced by sensitivity analysis to
six critical devices; this model exposes exactly those six degrees of
freedom (pass device and error-amp geometry).  Loop gain is measured by
breaking the loop at the error-amp feedback input with the L/C servo
(closed at DC, open for AC), the same *stb* technique as the OTA bench.
"""

from __future__ import annotations


from ..problems.base import Objective, Spec, Variable
from ..spice import Circuit, NMOS_7, PMOS_7, ac_analysis, operating_point, waveform
from .base import SizingCircuit
from .testbench import ac_frequencies, extract_loop_metrics

__all__ = ["LDORegulator"]

_SERVO_L = 1e6   # H
_SERVO_C = 1.0   # F


class LDORegulator(SizingCircuit):
    """Six-variable LDO: error amp + PMOS pass device + divider."""

    name = "ldo"

    def __init__(self, vdd: float = 1.8, vref: float = 0.9, vout_target: float = 1.5,
                 i_load: float = 2e-3, c_out: float = 50e-12, ibias: float = 10e-6):
        self.vdd = float(vdd)
        self.vref = float(vref)
        self.vout_target = float(vout_target)
        self.i_load = float(i_load)
        self.c_out = float(c_out)
        self.ibias = float(ibias)

    def variables(self) -> list[Variable]:
        return [
            Variable("W_PASS", 50.0, 2000.0, unit="um"),
            Variable("L_PASS", 0.05, 0.5, unit="um"),
            Variable("W_IN", 0.5, 50.0, unit="um"),
            Variable("W_MIR", 0.5, 50.0, unit="um"),
            Variable("W_TAIL", 0.5, 50.0, unit="um"),
            Variable("L_AMP", 0.05, 1.0, unit="um"),
        ]

    def objective(self) -> Objective:
        return Objective("quiescent_power_w", scale=200e-6, weight=1.0, unit="W")

    def specs(self) -> list[Spec]:
        return [
            Spec("dc_gain_db", "min", 40.0, unit="dB"),
            Spec("gbw_hz", "min", 2e6, unit="Hz"),
            Spec("phase_margin_deg", "min", 45.0, unit="deg"),
            Spec("gain_margin_db", "min", 8.0, unit="dB"),
            Spec("psrr_db", "min", 30.0, unit="dB"),
            Spec("vout_error_v", "max", 30e-3, unit="V"),
            Spec("quiescent_current_a", "max", 150e-6, unit="A"),
            Spec("pass_sat_margin_v", "min", 20e-3, unit="V"),
            Spec("amp_sat_margin_v", "min", 20e-3, unit="V"),
        ]

    def nominal(self) -> dict[str, float]:
        return {"W_PASS": 800.0, "L_PASS": 0.1, "W_IN": 10.0, "W_MIR": 8.0,
                "W_TAIL": 10.0, "L_AMP": 0.2}

    # ------------------------------------------------------------------
    def build(self, params: dict[str, float], *, closed: bool = False) -> Circuit:
        """``closed=True`` wires the divider tap straight to the error amp
        (true closed loop, for PSRR); otherwise the L/C loop-break servo is
        inserted for the loop-gain measurement."""
        p = {k: float(v) for k, v in params.items()}
        um = 1e-6
        l_amp = p["L_AMP"] * um

        # Divider sets vfb = 0.6 * vout -> vout = vref / 0.6 = 1.5 V.
        r_total = 100e3
        r_bottom = r_total * self.vref / self.vout_target
        r_top = r_total - r_bottom

        c = Circuit(self.name)
        c.vsource("VDD", "vdd", "0", self.vdd)
        c.vsource("VREF", "vref", "0", self.vref)
        if closed:
            # Zero-volt source keeps fbin as a separate node name.
            c.vsource("VSHORT", "fb", "fbin", 0.0)
        else:
            # Loop-break servo: DC feedback via LSRV, AC injection via CSRV.
            c.vsource("VINJ", "vinj", "0", 0.0, ac=1.0)
            c.capacitor("CSRV", "vinj", "fbin", _SERVO_C)
            c.inductor("LSRV", "fb", "fbin", _SERVO_L)

        # Error amplifier: NMOS pair, PMOS mirror, NMOS tail.
        c.isource("IB", "vdd", "nbias", self.ibias)
        c.mosfet("MB", "nbias", "nbias", "0", "0", NMOS_7, p["W_TAIL"] * um, l_amp)
        c.mosfet("MT", "tail", "nbias", "0", "0", NMOS_7, p["W_TAIL"] * um, l_amp, m=2)
        c.mosfet("M1", "d1", "fbin", "tail", "0", NMOS_7, p["W_IN"] * um, l_amp)
        c.mosfet("M2", "vg", "vref", "tail", "0", NMOS_7, p["W_IN"] * um, l_amp)
        c.mosfet("M3", "d1", "d1", "vdd", "vdd", PMOS_7, p["W_MIR"] * um, l_amp)
        c.mosfet("M4", "vg", "d1", "vdd", "vdd", PMOS_7, p["W_MIR"] * um, l_amp)

        # Pass device, divider, load.
        c.mosfet("MPASS", "vout", "vg", "vdd", "vdd", PMOS_7,
                 p["W_PASS"] * um, p["L_PASS"] * um)
        c.resistor("R1", "vout", "fb", r_top)
        c.resistor("R2", "fb", "0", r_bottom)
        c.isource("ILOAD", "vout", "0", self.i_load)
        c.capacitor("COUT", "vout", "0", self.c_out)
        return c

    def _nodeset(self) -> dict[str, float]:
        return {"vdd": self.vdd, "vref": self.vref, "vout": self.vout_target,
                "fb": self.vref, "fbin": self.vref, "vg": self.vdd - 0.4,
                "d1": self.vdd - 0.4, "tail": 0.25, "nbias": 0.45}

    def measure(self, params: dict[str, float]) -> dict[str, float]:
        circuit = self.build(params)
        op = operating_point(circuit, nodeset=self._nodeset())
        results: dict[str, float] = {}

        vout = op.v("vout")
        results["vout_error_v"] = abs(vout - self.vout_target)
        supply_current = abs(op.i("VDD"))
        quiescent = max(supply_current - self.i_load, 0.0) + self.ibias
        results["quiescent_current_a"] = quiescent
        results["quiescent_power_w"] = quiescent * self.vdd
        results["pass_sat_margin_v"] = op.mosfet_op("MPASS").saturation_margin
        results["amp_sat_margin_v"] = min(op.mosfet_op(m).saturation_margin
                                          for m in ("M1", "M2", "MT"))

        # Loop gain via the injection servo.
        freqs = ac_frequencies(10.0, 1e9, 61)
        ac = ac_analysis(circuit, op, freqs)
        loop = ac.v("fb")
        metrics = extract_loop_metrics(freqs, loop)
        results["dc_gain_db"] = metrics["dc_gain_db"]
        results["gbw_hz"] = metrics["ugf_hz"]
        results["phase_margin_deg"] = metrics["phase_margin_deg"]
        results["gain_margin_db"] = min(waveform.gain_margin_db(freqs, loop), 60.0)

        # PSRR: true closed-loop vdd -> vout rejection at low frequency.
        closed = self.build(params, closed=True)
        closed["VDD"].ac = 1.0
        op_closed = operating_point(closed, nodeset=self._nodeset())
        psr = ac_analysis(closed, op_closed, freqs[:6])
        results["psrr_db"] = -waveform.dc_gain_db(psr.v("vout"))
        return results
