"""Bridge between parameterized circuits and optimization problems.

A :class:`SizingCircuit` owns the design-variable list (the paper's Tables
I/III), the spec list (Eq. 9/10), a netlist builder, and the testbench
measurements.  :class:`CircuitSizingProblem` adapts it to the
:class:`~repro.problems.base.OptimizationProblem` interface every optimizer
consumes; simulator convergence failures become penalized evaluations
instead of crashes (real sizing loops hit non-convergent corners too).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..problems.base import (
    DesignSpace,
    EvaluationFailure,
    Objective,
    OptimizationProblem,
    Spec,
    Variable,
)
from ..spice.errors import SpiceError

__all__ = ["SizingCircuit", "CircuitSizingProblem"]


class SizingCircuit(ABC):
    """A parameterized circuit with testbench measurements.

    Subclasses define class attributes/methods:

    * :meth:`variables` — the design variables (name, bounds, kind, unit);
    * :meth:`objective` — the minimization target;
    * :meth:`specs` — the constraint list;
    * :meth:`measure` — run all testbenches for one sizing and return a
      ``{metric_name: value}`` mapping covering the objective and every spec.
    """

    name = "circuit"

    @abstractmethod
    def variables(self) -> list[Variable]:
        ...

    @abstractmethod
    def objective(self) -> Objective:
        ...

    @abstractmethod
    def specs(self) -> list[Spec]:
        ...

    @abstractmethod
    def measure(self, params: dict[str, float]) -> dict[str, float]:
        ...

    def nominal(self) -> dict[str, float]:
        """Designer starting point (mid-range by default)."""
        return {v.name: 0.5 * (v.lower + v.upper) for v in self.variables()}

    def space(self) -> DesignSpace:
        """The design space (built once and cached).

        ``space()`` sits inside every optimizer's rounding/caching path, so
        the variable list is materialized a single time per circuit object.
        Testbench netlists, by contrast, are rebuilt per evaluation — each
        ``build()`` returns a fresh :class:`~repro.spice.netlist.Circuit`
        whose compiled form (and its baked stamping plan) is cached on the
        circuit object itself, shared by every analysis in that evaluation.
        """
        cached = getattr(self, "_space_cache", None)
        if cached is None:
            cached = self._space_cache = DesignSpace(self.variables())
        return cached

    def problem(self) -> "CircuitSizingProblem":
        """The optimization problem for this circuit."""
        return CircuitSizingProblem(self)

    def parameter_table(self) -> list[tuple[str, str, float, float]]:
        """Rows (name, unit, lower, upper) — regenerates Tables I/III."""
        return [(v.name, v.unit, v.lower, v.upper) for v in self.variables()]


class CircuitSizingProblem(OptimizationProblem):
    """OptimizationProblem adapter around a :class:`SizingCircuit`."""

    def __init__(self, circuit: SizingCircuit):
        self.circuit = circuit
        super().__init__(circuit.space(), circuit.objective(), circuit.specs(),
                         name=circuit.name)
        self._metric_order = self.metric_names

    def _evaluate(self, x: np.ndarray) -> np.ndarray:
        params = self.space.as_dict(x)
        try:
            measured = self.circuit.measure(params)
        except SpiceError as exc:
            raise EvaluationFailure(str(exc)) from exc
        missing = [m for m in self._metric_order if m not in measured]
        if missing:
            raise KeyError(f"{self.circuit.name}: measure() missing metrics {missing}")
        return np.array([measured[m] for m in self._metric_order])

    def measure_dict(self, x: np.ndarray) -> dict[str, float]:
        """Convenience: raw metric mapping for one design vector."""
        row = self.evaluate(x)
        return dict(zip(self._metric_order, row))
