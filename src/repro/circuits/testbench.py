"""Shared testbench helpers: robust spec extraction with graceful fallbacks.

Random sizings routinely produce amplifiers with sub-unity gain or phase
curves that never reach the measurement condition.  Testbenches must return
*degraded numbers* for such designs (so the FoM can rank them) rather than
raising — these wrappers encode the fallbacks.
"""

from __future__ import annotations

import numpy as np

from ..spice import waveform
from ..spice.errors import AnalysisError

__all__ = ["ac_frequencies", "extract_loop_metrics", "settling_metrics"]


def ac_frequencies(fmin: float = 10.0, fmax: float = 1e9, points: int = 61) -> np.ndarray:
    """Standard logarithmic AC grid."""
    return np.logspace(np.log10(fmin), np.log10(fmax), points)


def extract_loop_metrics(freqs: np.ndarray, h: np.ndarray) -> dict[str, float]:
    """DC gain / UGF / phase margin with fallbacks for degenerate responses.

    * gain below 0 dB everywhere: UGF collapses to the low band edge and the
      phase margin to 0 (the design is hopeless, the FoM should see that);
    * gain above 0 dB through the band edge: UGF saturates at the top edge
      and the phase margin is evaluated there.
    """
    gain_db = waveform.dc_gain_db(h)
    mag = waveform.db20(h)
    phase = np.unwrap(np.angle(h)) * 180.0 / np.pi
    phase = phase - phase[0]
    if mag[0] <= 0.0:
        return {"dc_gain_db": gain_db, "ugf_hz": float(freqs[0]), "phase_margin_deg": 0.0}
    try:
        ugf = waveform.unity_gain_frequency(freqs, h)
        pm = 180.0 + float(np.interp(np.log10(ugf), np.log10(freqs), phase))
    except AnalysisError:
        ugf = float(freqs[-1])
        pm = 180.0 + float(phase[-1])
    return {"dc_gain_db": gain_db, "ugf_hz": ugf, "phase_margin_deg": pm}


def settling_metrics(t: np.ndarray, y: np.ndarray, *, t_step: float, target: float,
                     step_size: float, tolerance: float = 0.01) -> dict[str, float]:
    """Settling time to the tolerance band around ``target`` plus the static
    error in percent of the step; a waveform that never settles reports the
    full window (degraded but finite)."""
    window = float(t[-1] - t_step)
    final = waveform.steady_state(y)
    try:
        settle = waveform.settling_time(t, y, final=target,
                                        tolerance=tolerance * abs(step_size) / max(abs(target), 1e-12),
                                        t_start=t_step)
    except AnalysisError:
        settle = window
    static_error_pct = 100.0 * abs(final - target) / max(abs(step_size), 1e-12)
    return {"settling_time_s": float(settle), "static_error_pct": float(static_error_pct)}
