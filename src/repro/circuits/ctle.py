"""Continuous-time linear equalizer — industrial case 4 of Table V.

Differential pair with RC source degeneration: the degeneration zero boosts
high frequencies, equalizing channel loss.  The paper's CTLE (173k devices,
63k nodes) reduces to eight critical devices under sensitivity analysis;
this model exposes those eight degrees of freedom and the paper's 14-spec
structure (DC gain window, Nyquist gain, peaking window, f_peak window,
bandwidth, output common mode, tail/input saturation, power budget).
"""

from __future__ import annotations

import numpy as np

from ..problems.base import Objective, Spec, Variable
from ..spice import Circuit, NMOS_7, ac_analysis, operating_point, waveform
from .base import SizingCircuit
from .testbench import ac_frequencies

__all__ = ["CTLE"]


class CTLE(SizingCircuit):
    """Eight-variable source-degenerated differential equalizer."""

    name = "ctle"

    def __init__(self, vdd: float = 0.9, vcm_in: float = 0.6, ibias: float = 100e-6,
                 nyquist_hz: float = 2e9):
        self.vdd = float(vdd)
        self.vcm_in = float(vcm_in)
        self.ibias = float(ibias)
        self.nyquist_hz = float(nyquist_hz)

    def variables(self) -> list[Variable]:
        return [
            Variable("W_IN", 2.0, 100.0, unit="um"),
            Variable("L_IN", 0.05, 0.3, unit="um"),
            Variable("W_TAIL", 2.0, 100.0, unit="um"),
            Variable("L_TAIL", 0.05, 0.5, unit="um"),
            Variable("RS_KOHM", 0.05, 5.0, unit="kOhm"),
            Variable("CS_FF", 10.0, 1000.0, unit="fF"),
            Variable("RL_KOHM", 0.1, 5.0, unit="kOhm"),
            Variable("CL_FF", 10.0, 200.0, unit="fF"),
        ]

    def objective(self) -> Objective:
        return Objective("power_w", scale=2e-3, weight=1.0, unit="W")

    def specs(self) -> list[Spec]:
        ny = self.nyquist_hz
        return [
            Spec("dc_gain_db", "min", -2.0, unit="dB"),
            Spec("dc_gain_max_db", "max", 6.0, unit="dB"),
            Spec("nyquist_gain_db", "min", 6.0, unit="dB"),
            Spec("peaking_db", "min", 6.0, unit="dB"),
            Spec("peaking_max_db", "max", 9.0, unit="dB"),
            Spec("fpeak_hz", "min", 0.75 * ny, unit="Hz"),
            Spec("fpeak_max_hz", "max", 2.0 * ny, unit="Hz"),
            Spec("bw_3db_hz", "min", 1.5 * ny, unit="Hz"),
            Spec("vcm_out_error_v", "max", 0.05, unit="V"),
            Spec("offset_v", "max", 5e-3, unit="V"),
            Spec("satmargin_tail_v", "min", 20e-3, unit="V"),
            Spec("satmargin_in1_v", "min", 20e-3, unit="V"),
            Spec("satmargin_in2_v", "min", 20e-3, unit="V"),
            Spec("power_budget_w", "max", 1.5e-3, unit="W"),
        ]

    def nominal(self) -> dict[str, float]:
        return {"W_IN": 30.0, "L_IN": 0.06, "W_TAIL": 40.0, "L_TAIL": 0.2,
                "RS_KOHM": 0.8, "CS_FF": 250.0, "RL_KOHM": 0.8, "CL_FF": 30.0}

    # ------------------------------------------------------------------
    def build(self, params: dict[str, float]) -> Circuit:
        p = {k: float(v) for k, v in params.items()}
        um = 1e-6

        c = Circuit(self.name)
        c.vsource("VDD", "vdd", "0", self.vdd)
        c.vsource("VIP", "inp", "0", self.vcm_in, ac=0.5)
        c.vsource("VIN", "inn", "0", self.vcm_in, ac=-0.5)

        c.isource("IB", "vdd", "nbias", self.ibias)
        c.mosfet("MB", "nbias", "nbias", "0", "0", NMOS_7,
                 p["W_TAIL"] * um / 4.0, p["L_TAIL"] * um)
        c.mosfet("MT1", "s1", "nbias", "0", "0", NMOS_7, p["W_TAIL"] * um,
                 p["L_TAIL"] * um)
        c.mosfet("MT2", "s2", "nbias", "0", "0", NMOS_7, p["W_TAIL"] * um,
                 p["L_TAIL"] * um)

        c.mosfet("M1", "outn", "inp", "s1", "0", NMOS_7, p["W_IN"] * um, p["L_IN"] * um)
        c.mosfet("M2", "outp", "inn", "s2", "0", NMOS_7, p["W_IN"] * um, p["L_IN"] * um)

        c.resistor("RS", "s1", "s2", p["RS_KOHM"] * 1e3)
        c.capacitor("CS", "s1", "s2", p["CS_FF"] * 1e-15)
        c.resistor("RL1", "vdd", "outn", p["RL_KOHM"] * 1e3)
        c.resistor("RL2", "vdd", "outp", p["RL_KOHM"] * 1e3)
        c.capacitor("CL1", "outn", "0", p["CL_FF"] * 1e-15)
        c.capacitor("CL2", "outp", "0", p["CL_FF"] * 1e-15)
        return c

    def measure(self, params: dict[str, float]) -> dict[str, float]:
        circuit = self.build(params)
        op = operating_point(circuit)
        results: dict[str, float] = {}

        power = abs(op.source_power("VDD")) + self.vdd * self.ibias
        results["power_w"] = power
        results["power_budget_w"] = power
        vcm_out = 0.5 * (op.v("outp") + op.v("outn"))
        results["vcm_out_error_v"] = abs(vcm_out - 0.6)
        results["offset_v"] = abs(op.v("outp") - op.v("outn"))
        results["satmargin_tail_v"] = min(op.mosfet_op("MT1").saturation_margin,
                                          op.mosfet_op("MT2").saturation_margin)
        results["satmargin_in1_v"] = op.mosfet_op("M1").saturation_margin
        results["satmargin_in2_v"] = op.mosfet_op("M2").saturation_margin

        freqs = ac_frequencies(1e6, 20e9, 71)
        ac = ac_analysis(circuit, op, freqs)
        h = ac.diff("outp", "outn")
        dc_gain = waveform.dc_gain_db(h)
        results["dc_gain_db"] = dc_gain
        results["dc_gain_max_db"] = dc_gain
        results["nyquist_gain_db"] = waveform.gain_at(freqs, h, self.nyquist_hz)
        peaking = waveform.peaking_db(freqs, h)
        results["peaking_db"] = peaking
        results["peaking_max_db"] = peaking
        results["fpeak_hz"] = waveform.peak_frequency(freqs, h)
        results["fpeak_max_hz"] = results["fpeak_hz"]
        # Bandwidth: frequency where the gain falls 3 dB below the *peak*
        # (equalizer convention); search only past the peak so the rising
        # edge toward the peak is not mistaken for the roll-off.
        mag = waveform.db20(h)
        peak_index = int(np.argmax(mag))
        target = mag[peak_index] - 3.0
        below = np.nonzero(mag[peak_index:] <= target)[0]
        if len(below):
            k = peak_index + below[0]
            logf = np.log10(freqs)
            frac = (target - mag[k - 1]) / (mag[k] - mag[k - 1])
            results["bw_3db_hz"] = float(10 ** (logf[k - 1] + frac * (logf[k] - logf[k - 1])))
        else:
            results["bw_3db_hz"] = float(freqs[-1])
        return results
