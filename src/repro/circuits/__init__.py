"""Benchmark circuits: the paper's two building blocks and four industrial
cases, each exposed as a :class:`~repro.circuits.base.SizingCircuit`."""

from .base import CircuitSizingProblem, SizingCircuit
from .ctle import CTLE
from .folded_cascode import FoldedCascodeOTA
from .inverter_chain import InverterChain
from .ldo import LDORegulator
from .level_shifter import LevelShifter
from .strongarm_latch import StrongArmLatch

__all__ = [
    "SizingCircuit",
    "CircuitSizingProblem",
    "FoldedCascodeOTA",
    "StrongArmLatch",
    "InverterChain",
    "LevelShifter",
    "LDORegulator",
    "CTLE",
]

#: the four industrial circuits of Table V, keyed as in the paper
INDUSTRIAL_CIRCUITS = {
    "inverter_chain": InverterChain,
    "level_shifter": LevelShifter,
    "ldo": LDORegulator,
    "ctle": CTLE,
}
