"""Folded-cascode OTA — the paper's first small building block (Fig. 2).

A two-stage operational transconductance amplifier: folded-cascode first
stage (NMOS input pair folding into a PMOS cascode branch with a cascoded
NMOS mirror) followed by a class-A common-source second stage with Miller
compensation.  The paper's fully-differential two-stage OTA with CMFB is
realized here single-ended (mirror-loaded) for DC robustness across the
whole 20-dimensional sizing space; the variable list and bounds are exactly
Table I and the constraint structure matches Eq. 9 — 9 scalar performance
constraints plus 20 per-transistor saturation-margin constraints = 29, the
paper's count.

Open-loop testbenches bias the amplifier with the classic *stb* servo: a
huge inductor closes unity feedback at DC (so the high-gain output does not
rail) while an AC-coupled source drives the loop above a few hertz.

Variable roles (Fig. 2 shares W/L labels across device groups; the
``(N1+N2)`` folding-source multiplier follows the schematic annotation):

====  =======================================================
pair  devices
====  =======================================================
W1L1  NMOS input pair (m=N1), tail (m=2*N1), bias legs (m=N8)
W2L2  PMOS folding sources (m=N1+N2) and their bias diode
W3L3  PMOS cascodes (m=N2) and cascode-bias stack
W4L4  NMOS cascodes (m=N2) and wide-swing bias diode
W5L5  NMOS mirror bottoms (m=N2)
W6L6  second-stage PMOS driver (m=N9)
W7L7  second-stage NMOS sink (m=N9)
MCAP  Miller compensation capacitor [fF]
Cf    load capacitor [fF]
====  =======================================================
"""

from __future__ import annotations

import numpy as np

from ..problems.base import Objective, Spec, Variable
from ..spice import (
    Circuit,
    NMOS_180,
    PMOS_180,
    Pulse,
    ac_analysis,
    noise_analysis,
    operating_point,
    transient,
    waveform,
)
from .base import SizingCircuit
from .testbench import ac_frequencies, extract_loop_metrics, settling_metrics

__all__ = ["FoldedCascodeOTA", "SATURATION_DEVICES"]

#: transistors whose saturation margin is constrained (20, as in the paper)
SATURATION_DEVICES = [
    "M0", "M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8", "M9", "M10",
    "M11", "M12", "MB0", "MB1", "MB2", "MP0", "MP1A", "MP1B", "MP2",
]

_SERVO_INDUCTANCE = 1e9  # H: DC short, open above ~1 Hz
_SERVO_CAPACITANCE = 1.0  # F: AC short for the driven input


class FoldedCascodeOTA(SizingCircuit):
    """Two-stage folded-cascode OTA sized per Table I / Eq. 9."""

    name = "folded_cascode_ota"

    def __init__(self, vdd: float = 3.3, vcm: float = 1.6, ibias: float = 20e-6,
                 *, settle_window: float = 180e-9, tran_step: float = 1.5e-9):
        self.vdd = float(vdd)
        self.vcm = float(vcm)
        self.ibias = float(ibias)
        self.settle_window = float(settle_window)
        self.tran_step = float(tran_step)

    # ------------------------------------------------------------------
    # Problem definition (Table I + Eq. 9)
    # ------------------------------------------------------------------
    def variables(self) -> list[Variable]:
        names_wl = ["1", "2", "3", "4", "5", "6", "7"]
        variables = [Variable(f"L{i}", 0.18, 2.0, unit="um") for i in names_wl]
        variables += [Variable(f"W{i}", 0.24, 150.0, unit="um") for i in names_wl]
        variables += [Variable(f"N{i}", 1, 20, kind="integer") for i in ("1", "2", "8", "9")]
        variables += [Variable("MCAP", 100.0, 2000.0, unit="fF"),
                      Variable("Cf", 100.0, 10000.0, unit="fF")]
        return variables

    def objective(self) -> Objective:
        return Objective("power_w", scale=1e-3, weight=1.0, unit="W")

    def specs(self) -> list[Spec]:
        specs = [
            Spec("dc_gain_db", "min", 60.0, unit="dB"),
            Spec("settling_time_s", "max", 100e-9, unit="s"),
            Spec("cmrr_db", "min", 80.0, unit="dB"),
            Spec("psrr_db", "min", 80.0, unit="dB"),
            Spec("ugf_hz", "min", 30e6, unit="Hz"),
            Spec("output_swing_v", "min", 2.4, unit="V"),
            Spec("output_noise_vrms", "max", 30e-3, unit="Vrms"),
            Spec("static_error_pct", "max", 0.1, unit="%"),
            Spec("phase_margin_deg", "min", 60.0, unit="deg"),
        ]
        specs += [Spec(f"satmargin_{dev}_v", "min", 50e-3, unit="V")
                  for dev in SATURATION_DEVICES]
        return specs

    def nominal(self) -> dict[str, float]:
        """A hand-placed reasonable sizing (used by tests and examples)."""
        return {
            "L1": 0.5, "L2": 0.6, "L3": 0.5, "L4": 0.5, "L5": 0.6,
            "L6": 0.4, "L7": 0.5,
            "W1": 40.0, "W2": 80.0, "W3": 40.0, "W4": 25.0, "W5": 25.0,
            "W6": 80.0, "W7": 25.0,
            "N1": 2, "N2": 2, "N8": 2, "N9": 4,
            "MCAP": 1500.0, "Cf": 1000.0,
        }

    # ------------------------------------------------------------------
    # Netlist
    # ------------------------------------------------------------------
    def build(self, params: dict[str, float], *, feedback: bool = False,
              step_input: bool = False) -> Circuit:
        """Amplifier netlist.

        ``feedback=True`` wires the inverting input to the output (unity
        buffer, used for the settling transient); otherwise the *stb* servo
        (DC feedback through a huge inductor, AC drive through a huge
        capacitor) biases the open-loop testbench.  ``step_input=True``
        replaces the DC+AC input with the settling step.
        """
        p = {k: float(v) for k, v in params.items()}
        um = 1e-6
        w = {i: p[f"W{i}"] * um for i in "1234567"}
        l = {i: p[f"L{i}"] * um for i in "1234567"}
        n1, n2, n8, n9 = (max(1, int(round(p[f"N{i}"]))) for i in ("1", "2", "8", "9"))
        c_miller = p["MCAP"] * 1e-15
        c_load = p["Cf"] * 1e-15

        c = Circuit(self.name)
        c.vsource("VDD", "vdd", "0", self.vdd)
        if step_input:
            step = Pulse(self.vcm - 0.25, self.vcm + 0.25, delay=20e-9, rise=0.5e-9)
            c.vsource("VIP", "vip", "0", step)
        else:
            c.vsource("VIP", "vip", "0", self.vcm, ac=0.5)
        if feedback:
            inn = "vout"
        else:
            inn = "vinn"
            c.vsource("VIN", "vinsrc", "0", self.vcm, ac=-0.5)
            c.capacitor("CSRV", "vinsrc", "vinn", _SERVO_CAPACITANCE)
            c.inductor("LSRV", "vout", "vinn", _SERVO_INDUCTANCE)

        # --- bias chain: one unit current per (W1/L1, m=1) leg ------------
        c.isource("IB", "vdd", "nbias", self.ibias)
        c.mosfet("MB0", "nbias", "nbias", "0", "0", NMOS_180, w["1"], l["1"], m=n8)
        # pbias1: gate for the PMOS folding sources.
        c.mosfet("MB1", "pbias1", "nbias", "0", "0", NMOS_180, w["1"], l["1"], m=n8)
        c.mosfet("MP0", "pbias1", "pbias1", "vdd", "vdd", PMOS_180, w["2"], l["2"], m=n8)
        # pbias2: PMOS cascode gate, one stacked diode below VDD for headroom.
        c.mosfet("MB2", "pbias2", "nbias", "0", "0", NMOS_180, w["1"], l["1"], m=n8)
        c.mosfet("MP1A", "pmid", "pmid", "vdd", "vdd", PMOS_180, w["3"], l["3"], m=n8)
        c.mosfet("MP1B", "pbias2", "pbias2", "pmid", "vdd", PMOS_180, w["3"], l["3"], m=n8)
        # nbias2: wide-swing NMOS cascode gate (long-L diode: vth + ~2.5 vdsat).
        c.mosfet("MP2", "nbias2", "pbias1", "vdd", "vdd", PMOS_180, w["2"], l["2"], m=n8)
        c.mosfet("MNW", "nbias2", "nbias2", "0", "0", NMOS_180, w["4"], 6.0 * l["4"], m=n8)

        # --- first stage: folded cascode ---------------------------------
        c.mosfet("M0", "vtail", "nbias", "0", "0", NMOS_180, w["1"], l["1"], m=2 * n1)
        c.mosfet("M1", "fn1", inn, "vtail", "0", NMOS_180, w["1"], l["1"], m=n1)
        c.mosfet("M2", "fn2", "vip", "vtail", "0", NMOS_180, w["1"], l["1"], m=n1)
        c.mosfet("M3", "fn1", "pbias1", "vdd", "vdd", PMOS_180, w["2"], l["2"], m=n1 + n2)
        c.mosfet("M4", "fn2", "pbias1", "vdd", "vdd", PMOS_180, w["2"], l["2"], m=n1 + n2)
        c.mosfet("M5", "cn1", "pbias2", "fn1", "vdd", PMOS_180, w["3"], l["3"], m=n2)
        c.mosfet("M6", "cn2", "pbias2", "fn2", "vdd", PMOS_180, w["3"], l["3"], m=n2)
        c.mosfet("M7", "cn1", "nbias2", "mn1", "0", NMOS_180, w["4"], l["4"], m=n2)
        c.mosfet("M8", "cn2", "nbias2", "mn2", "0", NMOS_180, w["4"], l["4"], m=n2)
        c.mosfet("M9", "mn1", "cn1", "0", "0", NMOS_180, w["5"], l["5"], m=n2)
        c.mosfet("M10", "mn2", "cn1", "0", "0", NMOS_180, w["5"], l["5"], m=n2)

        # --- second stage with Miller compensation -----------------------
        c.mosfet("M11", "vout", "cn2", "vdd", "vdd", PMOS_180, w["6"], l["6"], m=n9)
        c.mosfet("M12", "vout", "nbias", "0", "0", NMOS_180, w["7"], l["7"], m=n9)
        c.resistor("RZ", "cn2", "zc", 2e3)
        c.capacitor("CC", "zc", "vout", c_miller)
        c.capacitor("CL", "vout", "0", c_load)
        return c

    # ------------------------------------------------------------------
    # Testbenches
    # ------------------------------------------------------------------
    def measure(self, params: dict[str, float]) -> dict[str, float]:
        """Run all testbenches and return every metric of Eq. 9."""
        results: dict[str, float] = {}
        freqs = ac_frequencies()

        # Servo-biased open-loop testbench: OP, differential AC, noise.
        amp = self.build(params)
        op = operating_point(amp, nodeset=self._nodeset())
        results["power_w"] = abs(op.source_power("VDD")) + self.vdd * self.ibias
        for device in SATURATION_DEVICES:
            mop = op.mosfet_op(device)
            results[f"satmargin_{device}_v"] = mop.saturation_margin

        ac_dm = ac_analysis(amp, op, freqs)
        h_dm = ac_dm.v("vout")
        results.update(extract_loop_metrics(freqs, h_dm))

        # Output swing from second-stage headroom.
        vdsat_p = op.mosfet_op("M11").vdsat
        vdsat_n = op.mosfet_op("M12").vdsat
        results["output_swing_v"] = self.vdd - vdsat_p - vdsat_n

        # Common-mode and supply gains reuse the same operating point.
        results["cmrr_db"] = self._rejection_db(amp, op, freqs, h_dm, mode="cm")
        results["psrr_db"] = self._rejection_db(amp, op, freqs, h_dm, mode="psr")

        # Output noise measured on the closed-loop buffer (the open-loop
        # noise of a 100 dB amplifier is dominated by the testbench, not the
        # design; the buffer's output noise is the input-referred amp noise).
        buffer_nz = self.build(params, feedback=True)
        op_nz = operating_point(buffer_nz, nodeset=self._nodeset())
        noise = noise_analysis(buffer_nz, op_nz, ac_frequencies(10.0, 1e9, 31), "vout")
        results["output_noise_vrms"] = noise.output_rms()

        # Closed-loop settling testbench (unity buffer, 0.5 V step).
        buffer_tb = self.build(params, feedback=True, step_input=True)
        tran = transient(buffer_tb, self.tran_step, 20e-9 + self.settle_window,
                         ics=self._nodeset())
        metrics = settling_metrics(tran.t, tran.v("vout"), t_step=20.5e-9,
                                   target=self.vcm + 0.25, step_size=0.5)
        results.update(metrics)
        return results

    def _nodeset(self) -> dict[str, float]:
        """Initial node voltages steering the feedback loop to the amplifying
        equilibrium (the railed state is also DC-stable)."""
        return {
            "vdd": self.vdd, "vip": self.vcm, "vinn": self.vcm, "vout": self.vcm,
            "vinsrc": self.vcm, "vtail": 0.9, "fn1": self.vdd - 0.55,
            "fn2": self.vdd - 0.55, "cn1": 0.55, "cn2": self.vdd - 0.7,
            "mn1": 0.1, "mn2": 0.1, "nbias": 0.5, "pbias1": self.vdd - 0.5,
            "pbias2": self.vdd - 1.1, "pmid": self.vdd - 0.5, "nbias2": 0.6,
        }

    def _rejection_db(self, amp: Circuit, op, freqs: np.ndarray, h_dm: np.ndarray,
                      mode: str) -> float:
        """CMRR/PSRR in dB: differential DC gain minus the spur-path DC gain."""
        vip = amp["VIP"]
        vin = amp["VIN"]
        vdd = amp["VDD"]
        saved = (vip.ac, vin.ac, vdd.ac)
        try:
            if mode == "cm":
                vip.ac, vin.ac, vdd.ac = 1.0, 1.0, 0.0
            else:
                vip.ac, vin.ac, vdd.ac = 0.0, 0.0, 1.0
            response = ac_analysis(amp, op, freqs[:8])
            spur_gain_db = waveform.dc_gain_db(response.v("vout"))
        finally:
            vip.ac, vin.ac, vdd.ac = saved
        return waveform.dc_gain_db(h_dm) - spur_gain_db
