"""Warm-start a sizing run from a donor run — cold vs. warm, end to end.

Three acts on the StrongARM latch (use ``--synthetic`` for an instant demo
on ConstrainedSphere):

1. a *donor* DNN-Opt run is executed and checkpointed;
2. a cold run and a warm-started run (``Study(..., warm_start=...)``) race
   to the donor's best FoM — the warm run tells the donor archive before
   its first ask, so its critic/actor start pre-trained and its
   space-filling block disappears;
3. the whole thing is repeated with ``--cache-dir``: rerunning answers
   every repeated design from the persistent cache with zero simulations
   (watch ``disk_hits`` in the engine stats).

    python examples/warmstart.py --synthetic
    python examples/warmstart.py --budget 60 --cache-dir /tmp/repro-cache
"""

import argparse
import os
import tempfile

import numpy as np

from repro.core import DNNOpt, EvalEngine, Study, WarmStart


def make_problem(args):
    if args.synthetic:
        from repro.problems import ConstrainedSphere
        return ConstrainedSphere(4)
    from repro.circuits import StrongArmLatch
    return StrongArmLatch().problem()


def make_optimizer(problem, budget, seed, engine=None):
    return DNNOpt(problem, budget, seed, n_init=12, n_elite=6,
                  critic_epochs=8, actor_epochs=8, critic_hidden=(32, 32),
                  actor_hidden=(32, 32), max_pseudo=2000, engine=engine)


def evals_to(history, target):
    fresh = np.minimum.accumulate(history.fom[history.n_warm:])
    hit = np.nonzero(fresh <= target)[0]
    return int(hit[0]) + 1 if len(hit) else None


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=50,
                        help="simulations for the cold/warm runs")
    parser.add_argument("--donor-budget", type=int, default=30)
    parser.add_argument("--synthetic", action="store_true",
                        help="run on ConstrainedSphere instead of SPICE")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent evaluation cache directory "
                             "(default: a temp dir; also REPRO_CACHE_DIR)")
    args = parser.parse_args()
    cache_dir = args.cache_dir or os.path.join(tempfile.gettempdir(),
                                               "repro-warmstart-cache")

    # Act 1: the donor run, checkpointed for reuse.
    problem = make_problem(args)
    donor_study = Study(make_optimizer(problem, args.donor_budget, seed=0))
    donor = donor_study.run()
    ckpt = os.path.join(tempfile.gettempdir(), "repro-warmstart-donor.json")
    donor_study.save(ckpt)
    print(f"donor: {donor.n_evals} sims, best FoM {donor.best_fom:.5f} "
          f"(checkpoint: {ckpt})")

    # Act 2: cold vs. warm race to the donor's best FoM.
    cold = Study(make_optimizer(make_problem(args), args.budget, seed=1)).run()
    warm = Study(make_optimizer(make_problem(args), args.budget, seed=1),
                 warm_start=WarmStart.from_checkpoint(ckpt)).run()
    print(f"cold: reached donor best after {evals_to(cold, donor.best_fom)} "
          f"sims (best {cold.best_fom:.5f})")
    print(f"warm: reached donor best after {evals_to(warm, donor.best_fom)} "
          f"sims (best {warm.best_fom:.5f}, "
          f"{warm.n_warm} donor rows told for free)")

    # Act 3: persistent cache — the same warm run again, twice.
    for attempt in ("first", "second"):
        with EvalEngine(cache_dir=cache_dir) as engine:
            history = Study(
                make_optimizer(make_problem(args), args.budget, seed=1,
                               engine=engine),
                warm_start=WarmStart.from_checkpoint(ckpt)).run()
        stats = history.engine_stats
        print(f"cached {attempt} run: {stats['misses']} simulations, "
              f"{stats['disk_hits']} answered from {cache_dir}")
