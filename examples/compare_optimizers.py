"""Reproduce the Figure 3/4 experiment shape on the StrongARM latch.

Runs DE, BO-wEI, GASPAD and DNN-Opt on the latch sizing problem and plots
the average FoM convergence as ASCII (the paper's Figures 3/4).  Budgets are
scaled down for a quick demonstration; set ``REPRO_FULL=1`` for the paper's
protocol.  Independent trials can be spread over a process pool, and every
trial's simulator queries can be routed through any evaluation backend —
including a running multi-host evaluation service:

    python examples/compare_optimizers.py --workers 4 --trials 4
    python -m repro.core.service --port 9101 &   # start shards first
    python -m repro.core.service --port 9102 &
    python examples/compare_optimizers.py --engine remote \
        --hosts 127.0.0.1:9101,127.0.0.1:9102

``--pipeline d`` keeps up to ``d`` ask/tell batches in flight per trial
(overlapping proposal generation with evaluations — a throughput mode that
lets adaptive optimizers condition on a slightly stale archive).
``--cache-dir DIR`` persists every evaluation to disk so a repeated sweep
answers duplicate designs with zero simulations, and ``--warm-start CKPT``
seeds every trial from a donor run's checkpoint (see
``examples/warmstart.py``).
"""

import argparse

from repro.circuits import StrongArmLatch
from repro.core import EvalEngine
from repro.core.engine import BACKENDS
from repro.experiments import (
    ExperimentScale,
    render_fom_figure,
    render_stats_table,
    run_building_block_comparison,
)

if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool workers for the trial loop")
    parser.add_argument("--trials", type=int, default=1,
                        help="independent trials per algorithm")
    parser.add_argument("--budget", type=int, default=40,
                        help="simulation budget for the model-based methods")
    parser.add_argument("--engine", choices=list(BACKENDS), default="serial",
                        help="evaluation backend for every trial's simulator "
                             "queries (default: serial)")
    parser.add_argument("--hosts", default="",
                        help="comma-separated host:port evaluation-service "
                             "workers for --engine remote (default: "
                             "REPRO_SERVICE_HOSTS)")
    parser.add_argument("--engine-workers", type=int, default=None,
                        help="pool size inside each trial's engine "
                             "(thread/process/async backends)")
    parser.add_argument("--pipeline", type=int, default=1, metavar="DEPTH",
                        help="ask/tell batches kept in flight per trial "
                             "(default 1 = barrier mode, the paper protocol)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent evaluation cache shared across "
                             "trials, algorithms and reruns (also honored "
                             "via REPRO_CACHE_DIR)")
    parser.add_argument("--warm-start", default=None, metavar="CKPT",
                        help="Study checkpoint to warm-start every trial "
                             "from (same problem: donor rows told for "
                             "free; different problem: donor designs "
                             "mapped by variable name)")
    args = parser.parse_args()

    engine_factory = None
    if args.engine != "serial":
        hosts = [h for h in args.hosts.split(",") if h.strip()] or None
        engine_factory = lambda: EvalEngine(args.engine, hosts=hosts,
                                            workers=args.engine_workers,
                                            cache_dir=args.cache_dir)

    warm_start = None
    if args.warm_start:
        from repro.core import WarmStart
        warm_start = WarmStart.from_checkpoint(args.warm_start)

    scale = ExperimentScale(n_trials=args.trials, budget=args.budget,
                            de_budget=3 * args.budget,
                            industrial_budget=args.budget,
                            sa_budget=max(100, 2 * args.budget))
    result = run_building_block_comparison(StrongArmLatch, scale=scale,
                                           workers=args.workers, verbose=True,
                                           engine_factory=engine_factory,
                                           pipeline_depth=args.pipeline,
                                           warm_start=warm_start,
                                           cache_dir=args.cache_dir)

    print()
    print(render_stats_table(result["stats"], objective_label="power (uW)",
                             unit_scale=1e-6,
                             title=f"StrongARM latch ({scale.label})"))
    print()
    print(render_fom_figure(result["curves"],
                            "Average FoM vs simulations (lower is better)"))
