"""Reproduce the Figure 3/4 experiment shape on the StrongARM latch.

Runs DE, BO-wEI, GASPAD and DNN-Opt on the latch sizing problem and plots
the average FoM convergence as ASCII (the paper's Figures 3/4).  Budgets are
scaled down for a quick demonstration; set ``REPRO_FULL=1`` for the paper's
protocol.

    python examples/compare_optimizers.py
"""

from repro.circuits import StrongArmLatch
from repro.experiments import (
    ExperimentScale,
    render_fom_figure,
    render_stats_table,
    run_building_block_comparison,
)

if __name__ == "__main__":
    scale = ExperimentScale(n_trials=1, budget=40, de_budget=120,
                            industrial_budget=40, sa_budget=100)
    result = run_building_block_comparison(StrongArmLatch, scale=scale, verbose=True)

    print()
    print(render_stats_table(result["stats"], objective_label="power (uW)",
                             unit_scale=1e-6,
                             title=f"StrongARM latch ({scale.label})"))
    print()
    print(render_fom_figure(result["curves"],
                            "Average FoM vs simulations (lower is better)"))
