"""Multi-tenant evaluation fleet: two concurrent Studies, one worker farm.

Starts a :class:`~repro.core.fleet.FleetCoordinator` with a registry
endpoint, spawns two worker processes that announce themselves over
heartbeats (no static host list), and drives two optimization Studies
concurrently as separate tenants — a high-priority DNN-Opt sizing run and
a background random-search sweep.  The fair chunk scheduler interleaves
both on the same workers; the closing stats dump shows the per-tenant
accounting (sims/sec, cache hit-rate) the registry's ``stats`` op serves
over the wire.

    PYTHONPATH=src python examples/fleet.py

Everything is local here, but the worker command line is exactly what a
farm deployment runs on other machines:

    python -m repro.core.service --register COORDINATOR:PORT
"""

import json
import threading

from repro.baselines import RandomSearch
from repro.core import DNNOpt
from repro.core.fleet import FleetCoordinator
from repro.core.service import spawn_local_worker
from repro.problems import ConstrainedSphere, Sphere

if __name__ == "__main__":
    fleet = FleetCoordinator(heartbeat_timeout=5.0, poll_interval=0.1)
    registry = fleet.listen()  # workers register + heartbeat here
    print(f"registry/metrics endpoint on {registry.address}")

    procs = []
    try:
        for _ in range(2):
            proc, host = spawn_local_worker(register=registry.address,
                                            heartbeat=0.5)
            procs.append(proc)
            print(f"worker {host} up (pid {proc.pid})")

        # two tenants: the sizing run gets twice the fair share
        sizing_engine = fleet.engine("sizing", priority=2.0)
        sweep_engine = fleet.engine("sweep")
        histories = {}

        def sizing():
            optimizer = DNNOpt(ConstrainedSphere(4), 120, seed=0, n_init=40,
                               critic_epochs=10, actor_epochs=10,
                               engine=sizing_engine)
            histories["sizing"] = optimizer.run()

        def sweep():
            optimizer = RandomSearch(Sphere(5), 200, seed=1,
                                     engine=sweep_engine)
            histories["sweep"] = optimizer.run()

        threads = [threading.Thread(target=sizing),
                   threading.Thread(target=sweep)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for name, history in sorted(histories.items()):
            summary = history.summary()
            print(f"[{name}] best feasible objective: "
                  f"{summary['best_feasible_objective']}")
        print("\nfleet stats:")
        print(json.dumps(fleet.stats(), indent=2))
        sizing_engine.close()
        sweep_engine.close()
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(timeout=10)
        fleet.close()
