"""The paper's industrial recipe end to end on the LDO (Section III-B).

1. Start from the designer's sizing (mid-manual-tuning, some specs failing).
2. Run sensitivity analysis (Eq. 7) on the failing constraints.
3. Reduce the problem to the critical devices.
4. Fine-tune with DNN-Opt until every constraint is met, counting SPICE
   simulations — the Table V protocol — and compare with the SA baseline.

    python examples/industrial_flow.py

``--corners`` instead runs the chained sign-off flow: the Table V
stop-when-feasible protocol staged over progressively tighter spec sets,
every stage optimized *worst-case over the four PVT sign-off corners*
(:class:`repro.scenarios.CornerProblem`), with each stage warm-started
from the previous stage's archive (:class:`repro.core.WarmStart`).

    python examples/industrial_flow.py --corners
"""

import argparse
import copy
from dataclasses import replace

import numpy as np

from repro.baselines import SimulatedAnnealing
from repro.circuits import LDORegulator
from repro.core import DNNOpt, EvalEngine, Study, WarmStart
from repro.scenarios import CornerProblem, ScenarioSet
from repro.sensitivity import reduce_problem, sensitivity_analysis


def nominal_flow():
    circuit = LDORegulator()
    problem = circuit.problem()
    nominal = np.array([circuit.nominal()[name] for name in problem.space.names])

    # Step 1: where does the designer's sizing stand?
    row = problem.evaluate(nominal)
    violations = problem.normalize(row)[1:]
    failing = [s.name for s, v in zip(problem.specs, violations) if v > 0]
    print(f"designer nominal fails: {failing}")

    # Step 2-3: sensitivity analysis and reduction to critical devices.
    sens = sensitivity_analysis(problem, nominal, step=0.1)
    print()
    print(sens.describe())
    reduced = reduce_problem(problem, sens, threshold=0.02,
                             metrics=failing or None, min_keep=3)
    print(f"\nreduced problem: {reduced.name} -> variables {reduced.space.names}")

    # Step 4: fine-tune, counting simulations to full feasibility.
    start = nominal[reduced.keep_columns]
    dnn = DNNOpt(reduced, budget=80, seed=1, n_init=10,
                 initial_designs=start[None, :], stop_when_feasible=True)
    dnn_history = dnn.run()
    sa = SimulatedAnnealing(reduced, 200, seed=1, x0=start, initial_step=0.1,
                            stop_when_feasible=True)
    sa_history = sa.run()

    def label(history):
        first = history.evals_to_first_feasible
        return str(first) if first is not None else f">{history.n_evals}"

    print(f"\nsimulations to meet all constraints:")
    print(f"  Simulated Annealing : {label(sa_history)}")
    print(f"  DNN-Opt             : {label(dnn_history)}")

    if dnn_history.any_feasible:
        best = reduced.expand(dnn_history.X[dnn_history.best_feasible_index])
        print("\nfinal full design:")
        for name, value in problem.space.as_dict(best).items():
            print(f"  {name:8s} = {value:.4g}")


#: chained spec schedule: each stage tightens the named bounds toward the
#: final sign-off values (the last stage is the untouched spec sheet)
STAGES = [
    ("warmup", {"dc_gain_db": 35.0, "gbw_hz": 1.0e6, "psrr_db": 20.0,
                "phase_margin_deg": 40.0}),
    ("mid", {"gbw_hz": 1.5e6, "psrr_db": 25.0}),
    ("signoff", {}),
]


def staged_problem(base, label, overrides):
    """A copy of ``base`` with some spec bounds relaxed (shared space)."""
    staged = copy.copy(base)
    staged.specs = [replace(spec, bound=overrides.get(spec.name, spec.bound))
                    for spec in base.specs]
    staged.name = f"{base.name}:{label}"
    return staged


def corner_flow(budget_per_stage, seed):
    circuit = LDORegulator()
    base = circuit.problem()
    nominal = np.array([circuit.nominal()[name] for name in base.space.names])
    scenarios = ScenarioSet.typical()
    print("sign-off corners:")
    for corner in scenarios:
        print(f"  {corner.describe()}")

    warm = None
    history = None
    total_designs = 0
    with EvalEngine() as engine:
        for label, overrides in STAGES:
            problem = CornerProblem(staged_problem(base, label, overrides),
                                    scenarios, aggregate="worst",
                                    gate_margin=0.5, gate_warmup=4)
            optimizer = DNNOpt(problem, budget=budget_per_stage, seed=seed,
                               n_init=8, initial_designs=nominal[None, :],
                               critic_epochs=5, actor_epochs=5,
                               stop_when_feasible=True)
            history = Study(optimizer, engine=engine, warm_start=warm).run()
            total_designs += history.n_evals
            stats = history.summary()["scenarios"]
            first = history.evals_to_first_feasible
            print(f"\nstage {label!r}: {history.n_evals} designs, "
                  f"worst-case feasible at "
                  f"{first if first is not None else '>' + str(history.n_evals)}")
            print(f"  fan-out: {stats['fanned_out']} full, {stats['gated']} "
                  f"gated -> {stats['corner_sims_saved']} corner sims saved")
            # the next stage starts from this stage's archive
            warm = WarmStart.from_history(history)

    sims = engine.counters_snapshot()["n_sim_calls"]
    print(f"\nchained flow: {total_designs} designs, {sims} corner-level "
          f"simulations across {len(STAGES)} stages")
    if history is not None and history.any_feasible:
        best = history.X[history.best_feasible_index]
        print("\nfinal design (feasible at every sign-off corner):")
        for name, value in base.space.as_dict(best).items():
            print(f"  {name:8s} = {value:.4g}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--corners", action="store_true",
                        help="chained spec flow, worst-case over PVT corners")
    parser.add_argument("--budget", type=int, default=40,
                        help="per-stage design budget for --corners")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    if args.corners:
        corner_flow(args.budget, args.seed)
    else:
        nominal_flow()
