"""The paper's industrial recipe end to end on the LDO (Section III-B).

1. Start from the designer's sizing (mid-manual-tuning, some specs failing).
2. Run sensitivity analysis (Eq. 7) on the failing constraints.
3. Reduce the problem to the critical devices.
4. Fine-tune with DNN-Opt until every constraint is met, counting SPICE
   simulations — the Table V protocol — and compare with the SA baseline.

    python examples/industrial_flow.py
"""

import numpy as np

from repro.baselines import SimulatedAnnealing
from repro.circuits import LDORegulator
from repro.core import DNNOpt
from repro.sensitivity import reduce_problem, sensitivity_analysis

if __name__ == "__main__":
    circuit = LDORegulator()
    problem = circuit.problem()
    nominal = np.array([circuit.nominal()[name] for name in problem.space.names])

    # Step 1: where does the designer's sizing stand?
    row = problem.evaluate(nominal)
    violations = problem.normalize(row)[1:]
    failing = [s.name for s, v in zip(problem.specs, violations) if v > 0]
    print(f"designer nominal fails: {failing}")

    # Step 2-3: sensitivity analysis and reduction to critical devices.
    sens = sensitivity_analysis(problem, nominal, step=0.1)
    print()
    print(sens.describe())
    reduced = reduce_problem(problem, sens, threshold=0.02,
                             metrics=failing or None, min_keep=3)
    print(f"\nreduced problem: {reduced.name} -> variables {reduced.space.names}")

    # Step 4: fine-tune, counting simulations to full feasibility.
    start = nominal[reduced.keep_columns]
    dnn = DNNOpt(reduced, budget=80, seed=1, n_init=10,
                 initial_designs=start[None, :], stop_when_feasible=True)
    dnn_history = dnn.run()
    sa = SimulatedAnnealing(reduced, 200, seed=1, x0=start, initial_step=0.1,
                            stop_when_feasible=True)
    sa_history = sa.run()

    def label(history):
        first = history.evals_to_first_feasible
        return str(first) if first is not None else f">{history.n_evals}"

    print(f"\nsimulations to meet all constraints:")
    print(f"  Simulated Annealing : {label(sa_history)}")
    print(f"  DNN-Opt             : {label(dnn_history)}")

    if dnn_history.any_feasible:
        best = reduced.expand(dnn_history.X[dnn_history.best_feasible_index])
        print("\nfinal full design:")
        for name, value in problem.space.as_dict(best).items():
            print(f"  {name:8s} = {value:.4g}")
