"""Quickstart: size the paper's folded-cascode OTA with DNN-Opt.

Runs a deliberately small budget so it finishes in about a minute; raise
``BUDGET`` toward the paper's 500 for a serious sizing run.

    python examples/quickstart.py

The optimizer speaks *ask/tell* — it only proposes designs and observes
results — while a ``Study`` owns the loop: budget, stop conditions,
callbacks and checkpointing.  The checkpoint written below can resume the
run after a crash::

    study = Study.load("quickstart.ckpt.json", fresh_optimizer)
    study.run()   # replays the recorded prefix, then continues
"""

from repro import DNNOpt, Study
from repro.circuits import FoldedCascodeOTA

BUDGET = 60

if __name__ == "__main__":
    circuit = FoldedCascodeOTA()
    problem = circuit.problem()
    print(problem.describe())
    print()

    optimizer = DNNOpt(problem, budget=BUDGET, seed=0, n_init=20)

    def progress(study):
        h = study.history
        print(f"  batch {study.n_batches:3d}: {h.n_evals:3d}/{BUDGET} sims, "
              f"best FoM {h.best_fom:.4f}")

    study = Study(optimizer, callbacks=[progress],
                  checkpoint_path="quickstart.ckpt.json", checkpoint_every=10)
    history = study.run()

    print(f"\nsimulations used      : {history.n_evals}")
    print(f"best FoM              : {history.best_fom:.4f}")
    print(f"first feasible at sim : {history.evals_to_first_feasible}")
    if history.best_feasible_objective is not None:
        print(f"best feasible power   : {history.best_feasible_objective * 1e3:.3f} mW")
    engine = history.summary().get("engine", {})
    print(f"engine                : {engine.get('backend')} backend, "
          f"{engine.get('misses', 0)} simulations, "
          f"{engine.get('cache_hits', 0)} cache hits")

    best = problem.space.as_dict(history.best_x)
    print("\nbest design:")
    for name, value in best.items():
        print(f"  {name:6s} = {value:.4g}")

    print("\nmeasured specs of the best design:")
    measured = problem.measure_dict(history.best_x)
    for spec in problem.specs[:9]:  # the scalar performance specs
        status = "PASS" if spec.satisfied(measured[spec.name]) else "FAIL"
        print(f"  {spec.describe():42s} measured {measured[spec.name]:.4g}  [{status}]")
