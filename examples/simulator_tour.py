"""Tour of the repro.spice simulator on a two-stage amplifier testbench.

Shows the analyses the circuit testbenches are built from: operating point,
AC gain/phase, transient step response and integrated output noise — all on
the paper's folded-cascode OTA at its nominal sizing.

    python examples/simulator_tour.py
"""

import numpy as np

from repro.circuits import FoldedCascodeOTA
from repro.spice import ac_analysis, noise_analysis, operating_point, transient, waveform
from repro.spice.units import format_eng

if __name__ == "__main__":
    ota = FoldedCascodeOTA()
    amp = ota.build(ota.nominal())

    # --- operating point -------------------------------------------------
    op = operating_point(amp, nodeset=ota._nodeset())
    print("operating point:")
    print(f"  supply power : {format_eng(abs(op.source_power('VDD')), 'W')}")
    for name in ("M1", "M5", "M9", "M11"):
        mop = op.mosfet_op(name)
        print(f"  {name:4s} id={format_eng(mop.ids, 'A'):>10s} gm={format_eng(mop.gm, 'S'):>10s} "
              f"region={mop.region}")

    # --- AC --------------------------------------------------------------
    freqs = np.logspace(1, 9, 121)
    ac = ac_analysis(amp, op, freqs)
    h = ac.v("vout")
    print("\nopen-loop AC:")
    print(f"  DC gain      : {waveform.dc_gain_db(h):.1f} dB")
    print(f"  unity gain   : {format_eng(waveform.unity_gain_frequency(freqs, h), 'Hz')}")
    print(f"  phase margin : {waveform.phase_margin(freqs, h):.1f} deg")

    # --- transient (unity-gain buffer step) -------------------------------
    buffer_tb = ota.build(ota.nominal(), feedback=True, step_input=True)
    tran = transient(buffer_tb, 1.5e-9, 2e-7, ics=ota._nodeset())
    final = waveform.steady_state(tran.v("vout"))
    print("\nclosed-loop step response:")
    print(f"  final value  : {final:.4f} V (target {ota.vcm + 0.25:.2f} V)")
    print(f"  overshoot    : {100 * waveform.overshoot(tran.v('vout')):.1f} %")

    # --- noise -------------------------------------------------------------
    buffer_nz = ota.build(ota.nominal(), feedback=True)
    op_nz = operating_point(buffer_nz, nodeset=ota._nodeset())
    noise = noise_analysis(buffer_nz, op_nz, np.logspace(1, 9, 31), "vout")
    print("\nnoise (closed loop):")
    print(f"  integrated   : {format_eng(noise.output_rms(), 'Vrms')}")
    for name, variance in noise.dominant_contributors(3):
        print(f"  {name:20s} {format_eng(np.sqrt(variance), 'Vrms')}")
